//! Lower/upper envelopes of straight lines over an interval.
//!
//! Used as a simple, independently-verifiable envelope implementation (the
//! discrete case of the paper manipulates envelopes of *linear* lifted
//! functions `f(x, p) = ‖p‖² − 2⟨x, p⟩`, cf. Lemma 2.13) and for
//! cross-checking the generic polar machinery in tests.

use crate::piecewise::{Piece, Piecewise};

/// The line `y = m·x + b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line {
    pub m: f64,
    pub b: f64,
}

impl Line {
    pub fn new(m: f64, b: f64) -> Self {
        Line { m, b }
    }

    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.m * x + self.b
    }

    /// x-coordinate where two (non-parallel) lines intersect.
    pub fn intersect_x(&self, other: &Line) -> Option<f64> {
        let dm = self.m - other.m;
        if dm.abs() <= f64::MIN_POSITIVE {
            return None;
        }
        Some((other.b - self.b) / dm)
    }
}

/// Lower envelope of `lines` over `[x_lo, x_hi]`, as a [`Piecewise`] whose
/// ids index into `lines`. Runs in `O(n log n)` (sort + convex-hull trick).
pub fn lower_envelope_lines(lines: &[Line], x_lo: f64, x_hi: f64) -> Piecewise {
    assert!(x_lo < x_hi, "empty interval");
    if lines.is_empty() {
        return Piecewise::empty();
    }
    // On a lower envelope the active slope *decreases* left-to-right (the
    // steepest line wins as x → −∞), so process lines by descending slope;
    // each new line then becomes minimal at some x to the right. Among equal
    // slopes only the lowest intercept can ever appear.
    let mut order: Vec<usize> = (0..lines.len()).collect();
    order.sort_by(|&i, &j| {
        lines[j]
            .m
            .partial_cmp(&lines[i].m)
            .unwrap()
            .then(lines[i].b.partial_cmp(&lines[j].b).unwrap())
    });
    order.dedup_by(|&mut i, &mut j| lines[i].m == lines[j].m);

    // Convex-hull trick: maintain a stack of (line index, start x).
    let mut stack: Vec<(usize, f64)> = vec![];
    for &idx in &order {
        let line = lines[idx];
        loop {
            match stack.last() {
                None => {
                    stack.push((idx, x_lo));
                    break;
                }
                Some(&(top_idx, top_start)) => {
                    let top = lines[top_idx];
                    // Where does the new (steeper) line dip below the top?
                    let x = match top.intersect_x(&line) {
                        Some(x) => x,
                        None => {
                            // Parallel: new line is everywhere ≥ top (sorted
                            // by intercept); skip it.
                            break;
                        }
                    };
                    if x <= top_start {
                        // New line dominates the whole top piece: pop.
                        stack.pop();
                        continue;
                    }
                    if x >= x_hi {
                        // New line never becomes minimal in range.
                        break;
                    }
                    stack.push((idx, x));
                    break;
                }
            }
        }
    }

    let mut pieces = Vec::with_capacity(stack.len());
    for (k, &(idx, start)) in stack.iter().enumerate() {
        let end = stack.get(k + 1).map_or(x_hi, |&(_, s)| s);
        if end > start {
            pieces.push(Piece {
                lo: start,
                hi: end,
                id: idx,
            });
        }
    }
    let mut pw = Piecewise::new(pieces);
    pw.coalesce(1e-12 * (x_hi - x_lo).max(1.0));
    pw
}

/// Upper envelope of `lines` over `[x_lo, x_hi]` (by negating and reusing the
/// lower envelope).
pub fn upper_envelope_lines(lines: &[Line], x_lo: f64, x_hi: f64) -> Piecewise {
    let neg: Vec<Line> = lines.iter().map(|l| Line::new(-l.m, -l.b)).collect();
    lower_envelope_lines(&neg, x_lo, x_hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line() {
        let env = lower_envelope_lines(&[Line::new(1.0, 0.0)], -1.0, 1.0);
        assert_eq!(env.len(), 1);
        assert_eq!(env.pieces[0].id, 0);
    }

    #[test]
    fn v_shape() {
        let lines = [Line::new(-1.0, 0.0), Line::new(1.0, 0.0)];
        let env = lower_envelope_lines(&lines, -2.0, 2.0);
        assert_eq!(env.len(), 2);
        assert_eq!(env.id_at(-1.0), Some(1)); // slope +1 is lower for x < 0
        assert_eq!(env.id_at(1.0), Some(0));
    }

    #[test]
    fn dominated_line_never_appears() {
        let lines = [
            Line::new(-1.0, 0.0),
            Line::new(1.0, 0.0),
            Line::new(0.0, 10.0), // way above
        ];
        let env = lower_envelope_lines(&lines, -2.0, 2.0);
        assert!(env.pieces.iter().all(|p| p.id != 2));
    }

    #[test]
    fn parallel_lines_keep_lowest() {
        let lines = [
            Line::new(1.0, 5.0),
            Line::new(1.0, 1.0),
            Line::new(1.0, 3.0),
        ];
        let env = lower_envelope_lines(&lines, 0.0, 1.0);
        assert_eq!(env.len(), 1);
        assert_eq!(env.pieces[0].id, 1);
    }

    #[test]
    fn random_envelopes_match_brute_force() {
        let mut state = 31337u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        for trial in 0..50 {
            let n = 2 + (trial % 9);
            let lines: Vec<Line> = (0..n).map(|_| Line::new(next(), next())).collect();
            let env = lower_envelope_lines(&lines, -3.0, 3.0);
            for s in 0..500 {
                let x = -3.0 + 6.0 * (s as f64 + 0.5) / 500.0;
                let brute = lines
                    .iter()
                    .map(|l| l.eval(x))
                    .fold(f64::INFINITY, f64::min);
                let got = lines[env.id_at(x).expect("total functions")].eval(x);
                assert!(
                    (got - brute).abs() < 1e-9,
                    "trial {trial} x={x}: got {got} brute {brute}"
                );
            }
        }
    }

    #[test]
    fn upper_envelope_is_max() {
        let lines = [Line::new(-1.0, 0.0), Line::new(1.0, 0.0)];
        let env = upper_envelope_lines(&lines, -2.0, 2.0);
        assert_eq!(env.id_at(-1.0), Some(0)); // slope −1 is higher for x < 0
        assert_eq!(env.id_at(1.0), Some(1));
    }
}
