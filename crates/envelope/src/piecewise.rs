//! Piecewise-function containers.
//!
//! A [`Piecewise`] is a sorted list of non-overlapping [`Piece`]s over a
//! parameter interval. Parameter values not covered by any piece are *gaps*,
//! interpreted as "the function is +∞ / undefined there" — exactly how the
//! polar curves `γ_ij ≡ +∞` outside their angular domain behave.

/// A maximal parameter interval `[lo, hi]` on which one function (identified
/// by `id`) is active.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Piece {
    pub lo: f64,
    pub hi: f64,
    /// Identifier of the active function (caller-defined index).
    pub id: usize,
}

impl Piece {
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    pub fn contains(&self, t: f64) -> bool {
        t >= self.lo && t <= self.hi
    }

    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A sorted, non-overlapping sequence of pieces over `[domain_lo, domain_hi]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Piecewise {
    pub pieces: Vec<Piece>,
}

impl Piecewise {
    pub fn new(pieces: Vec<Piece>) -> Self {
        debug_assert!(pieces.windows(2).all(|w| w[0].hi <= w[1].lo + 1e-12));
        Piecewise { pieces }
    }

    pub fn empty() -> Self {
        Piecewise { pieces: vec![] }
    }

    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// The piece covering parameter `t`, if any.
    pub fn piece_at(&self, t: f64) -> Option<&Piece> {
        let idx = self.pieces.partition_point(|p| p.hi < t);
        self.pieces.get(idx).filter(|p| p.contains(t))
    }

    /// The id active at `t`, if any.
    pub fn id_at(&self, t: f64) -> Option<usize> {
        self.piece_at(t).map(|p| p.id)
    }

    /// Merges adjacent pieces with the same id whose intervals touch (within
    /// `tol`), and drops pieces narrower than `tol`.
    pub fn coalesce(&mut self, tol: f64) {
        let mut out: Vec<Piece> = Vec::with_capacity(self.pieces.len());
        for &p in &self.pieces {
            if p.width() <= tol {
                // Degenerate sliver: extend the previous piece over it if
                // possible, otherwise drop it.
                if let Some(last) = out.last_mut() {
                    if last.id == p.id && p.lo - last.hi <= tol {
                        last.hi = last.hi.max(p.hi);
                    }
                }
                continue;
            }
            match out.last_mut() {
                Some(last) if last.id == p.id && p.lo - last.hi <= tol => {
                    last.hi = last.hi.max(p.hi);
                }
                _ => out.push(p),
            }
        }
        self.pieces = out;
    }

    /// All interval boundaries (piece endpoints), sorted and deduplicated
    /// within `tol`.
    pub fn boundaries(&self, tol: f64) -> Vec<f64> {
        let mut bs: Vec<f64> = Vec::with_capacity(2 * self.pieces.len());
        for p in &self.pieces {
            bs.push(p.lo);
            bs.push(p.hi);
        }
        bs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bs.dedup_by(|a, b| (*a - *b).abs() <= tol);
        bs
    }

    /// Total covered width.
    pub fn covered_width(&self) -> f64 {
        self.pieces.iter().map(Piece::width).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pw(spec: &[(f64, f64, usize)]) -> Piecewise {
        Piecewise::new(
            spec.iter()
                .map(|&(lo, hi, id)| Piece { lo, hi, id })
                .collect(),
        )
    }

    #[test]
    fn piece_at_lookup() {
        let w = pw(&[(0.0, 1.0, 7), (2.0, 3.0, 8)]);
        assert_eq!(w.id_at(0.5), Some(7));
        assert_eq!(w.id_at(1.0), Some(7));
        assert_eq!(w.id_at(1.5), None); // gap
        assert_eq!(w.id_at(2.5), Some(8));
        assert_eq!(w.id_at(3.5), None);
        assert_eq!(w.len(), 2);
        assert!((w.covered_width() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn coalesce_merges_and_drops() {
        let mut w = pw(&[
            (0.0, 1.0, 7),
            (1.0, 2.0, 7),         // same id, touching → merge
            (2.0, 2.0 + 1e-15, 9), // sliver → dropped
            (2.5, 3.0, 7),         // gap → separate piece
        ]);
        w.coalesce(1e-12);
        assert_eq!(w.len(), 2);
        assert_eq!(
            w.pieces[0],
            Piece {
                lo: 0.0,
                hi: 2.0,
                id: 7
            }
        );
        assert_eq!(
            w.pieces[1],
            Piece {
                lo: 2.5,
                hi: 3.0,
                id: 7
            }
        );
    }

    #[test]
    fn boundaries_dedup() {
        let w = pw(&[(0.0, 1.0, 1), (1.0, 2.0, 2)]);
        let bs = w.boundaries(1e-12);
        assert_eq!(bs, vec![0.0, 1.0, 2.0]);
    }
}
