//! Lower envelopes of partial functions on the circle `[0, 2π)`.
//!
//! This is the engine behind Lemma 2.2 of the paper: `γ_i(θ) = min_j γ_ij(θ)`
//! where each `γ_ij` is a partial function (finite only on an open arc of
//! directions). The divide-and-conquer merge needs only two oracles:
//!
//! * *evaluation* of a function at a parameter, and
//! * *pairwise crossings* of two functions (the geometry crate provides them
//!   in closed form — two polar hyperbola branches around the same focus
//!   cross where `A cos θ + B sin θ = C`).
//!
//! Because every pair of curves crosses at most twice, the merged envelope
//! has linearly many breakpoints (the Davenport–Schinzel bound the paper
//! cites), and the divide-and-conquer runs in `O(n log n)` oracle calls.

use crate::piecewise::{Piece, Piecewise};
use std::f64::consts::TAU;

/// Absolute parameter tolerance for boundary handling (radians).
const THETA_TOL: f64 = 1e-12;

/// Oracles describing a family of partial functions on `[0, 2π)`.
pub trait EnvelopeOracle {
    /// Value of function `id` at `t` (may be `+∞` outside its domain).
    fn eval(&self, id: usize, t: f64) -> f64;

    /// Non-wrapping closed subintervals of `[0, 2π]` on which function `id`
    /// is finite. A function spanning the whole circle returns `[(0, 2π)]`.
    fn domains(&self, id: usize) -> Vec<(f64, f64)>;

    /// Parameters in `[0, 2π)` where functions `a` and `b` take equal
    /// (finite) values.
    fn crossings(&self, a: usize, b: usize) -> Vec<f64>;
}

/// Computes the lower envelope of the functions `ids` over `[0, 2π]`.
///
/// The result's pieces carry the *id of the minimal function*; parameter
/// ranges where every function is `+∞` are gaps.
pub fn lower_envelope_circle<O: EnvelopeOracle>(ids: &[usize], oracle: &O) -> Piecewise {
    match ids.len() {
        0 => Piecewise::empty(),
        1 => {
            let mut pieces: Vec<Piece> = oracle
                .domains(ids[0])
                .into_iter()
                .filter(|&(lo, hi)| hi - lo > THETA_TOL)
                .map(|(lo, hi)| Piece { lo, hi, id: ids[0] })
                .collect();
            pieces.sort_by(|a, b| a.lo.partial_cmp(&b.lo).unwrap());
            let mut pw = Piecewise::new(pieces);
            pw.coalesce(THETA_TOL);
            pw
        }
        n => {
            let (left, right) = ids.split_at(n / 2);
            let a = lower_envelope_circle(left, oracle);
            let b = lower_envelope_circle(right, oracle);
            merge(&a, &b, oracle)
        }
    }
}

/// Merges two envelopes into their pointwise minimum.
fn merge<O: EnvelopeOracle>(a: &Piecewise, b: &Piecewise, oracle: &O) -> Piecewise {
    if a.is_empty() {
        return b.clone();
    }
    if b.is_empty() {
        return a.clone();
    }
    // Elementary intervals: between consecutive boundaries each input
    // envelope has at most one active function.
    let mut bounds: Vec<f64> = a
        .boundaries(THETA_TOL)
        .into_iter()
        .chain(b.boundaries(THETA_TOL))
        .collect();
    bounds.sort_by(|x, y| x.partial_cmp(y).unwrap());
    bounds.dedup_by(|x, y| (*x - *y).abs() <= THETA_TOL);

    let mut out: Vec<Piece> = vec![];
    for w in bounds.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 - t0 <= THETA_TOL {
            continue;
        }
        let mid = 0.5 * (t0 + t1);
        let ida = a.id_at(mid);
        let idb = b.id_at(mid);
        match (ida, idb) {
            (None, None) => {}
            (Some(id), None) | (None, Some(id)) => out.push(Piece { lo: t0, hi: t1, id }),
            (Some(ia), Some(ib)) if ia == ib => out.push(Piece {
                lo: t0,
                hi: t1,
                id: ia,
            }),
            (Some(ia), Some(ib)) => {
                // Cut at the crossings of the two active functions inside
                // (t0, t1) and take the pointwise winner on each cell.
                let mut cuts: Vec<f64> = oracle
                    .crossings(ia, ib)
                    .into_iter()
                    .filter(|&x| x > t0 + THETA_TOL && x < t1 - THETA_TOL)
                    .collect();
                cuts.sort_by(|x, y| x.partial_cmp(y).unwrap());
                cuts.dedup_by(|x, y| (*x - *y).abs() <= THETA_TOL);
                let mut lo = t0;
                for cut in cuts.into_iter().chain(std::iter::once(t1)) {
                    let m = 0.5 * (lo + cut);
                    let va = oracle.eval(ia, m);
                    let vb = oracle.eval(ib, m);
                    let id = if va < vb || (va == vb && ia < ib) {
                        ia
                    } else {
                        ib
                    };
                    out.push(Piece { lo, hi: cut, id });
                    lo = cut;
                }
            }
        }
    }
    let mut pw = Piecewise::new(out);
    pw.coalesce(THETA_TOL);
    pw
}

/// Convenience: validates an envelope against brute-force sampling.
/// Returns the largest violation `envelope_value − true_min` observed at
/// `samples` evenly-spaced parameters (0 when the envelope is correct up to
/// the sampling density). Intended for tests and experiment harnesses.
pub fn max_violation<O: EnvelopeOracle>(
    env: &Piecewise,
    ids: &[usize],
    oracle: &O,
    samples: usize,
) -> f64 {
    let mut worst = 0.0f64;
    for s in 0..samples {
        let t = TAU * (s as f64 + 0.5) / samples as f64;
        let true_min = ids
            .iter()
            .map(|&id| oracle.eval(id, t))
            .fold(f64::INFINITY, f64::min);
        let env_val = match env.id_at(t) {
            Some(id) => oracle.eval(id, t),
            None => f64::INFINITY,
        };
        if env_val.is_infinite() && true_min.is_infinite() {
            continue;
        }
        if env_val.is_infinite() != true_min.is_infinite() {
            return f64::INFINITY;
        }
        worst = worst.max(env_val - true_min);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test oracle: sinusoids `v_i(t) = a_i + b_i·cos(t − φ_i)`, which are
    /// total functions with closed-form pairwise crossings — structurally
    /// identical to the polar hyperbola oracle (A cosθ + B sinθ = C).
    struct Sinusoids {
        params: Vec<(f64, f64, f64)>, // (a, b, phi)
        /// Optional domain restriction per function.
        domains: Vec<Vec<(f64, f64)>>,
    }

    impl Sinusoids {
        fn total(params: Vec<(f64, f64, f64)>) -> Self {
            let n = params.len();
            Sinusoids {
                params,
                domains: vec![vec![(0.0, TAU)]; n],
            }
        }
    }

    impl EnvelopeOracle for Sinusoids {
        fn eval(&self, id: usize, t: f64) -> f64 {
            let in_domain = self.domains[id]
                .iter()
                .any(|&(lo, hi)| t >= lo - 1e-15 && t <= hi + 1e-15);
            if !in_domain {
                return f64::INFINITY;
            }
            let (a, b, phi) = self.params[id];
            a + b * (t - phi).cos()
        }
        fn domains(&self, id: usize) -> Vec<(f64, f64)> {
            self.domains[id].clone()
        }
        fn crossings(&self, i: usize, j: usize) -> Vec<f64> {
            // a1 + b1 cos(t-φ1) = a2 + b2 cos(t-φ2)
            //  ⇔ A cos t + B sin t = C
            let (a1, b1, p1) = self.params[i];
            let (a2, b2, p2) = self.params[j];
            let aa = b1 * p1.cos() - b2 * p2.cos();
            let bb = b1 * p1.sin() - b2 * p2.sin();
            let cc = a2 - a1;
            let rho = aa.hypot(bb);
            if rho < 1e-15 {
                return vec![];
            }
            if (cc / rho).abs() > 1.0 {
                return vec![];
            }
            let phi0 = bb.atan2(aa);
            let d = (cc / rho).clamp(-1.0, 1.0).acos();
            let mut out = vec![];
            for t in [phi0 + d, phi0 - d] {
                let mut t = t % TAU;
                if t < 0.0 {
                    t += TAU;
                }
                out.push(t);
            }
            out
        }
    }

    #[test]
    fn envelope_of_constants() {
        let oracle = Sinusoids::total(vec![(3.0, 0.0, 0.0), (1.0, 0.0, 0.0), (2.0, 0.0, 0.0)]);
        let env = lower_envelope_circle(&[0, 1, 2], &oracle);
        assert_eq!(env.len(), 1);
        assert_eq!(env.pieces[0].id, 1);
        assert!(max_violation(&env, &[0, 1, 2], &oracle, 100) < 1e-12);
    }

    #[test]
    fn envelope_of_two_sinusoids() {
        // Two opposite-phase sinusoids cross exactly twice.
        let oracle = Sinusoids::total(vec![(0.0, 1.0, 0.0), (0.0, 1.0, std::f64::consts::PI)]);
        let env = lower_envelope_circle(&[0, 1], &oracle);
        // Two breakpoints → two or three pieces over [0, 2π].
        assert!(env.len() >= 2 && env.len() <= 3, "pieces: {:?}", env.pieces);
        assert!(max_violation(&env, &[0, 1], &oracle, 1000) < 1e-9);
    }

    #[test]
    fn envelope_with_gaps() {
        let mut oracle = Sinusoids::total(vec![(1.0, 0.0, 0.0), (0.0, 0.0, 0.0)]);
        // Function 1 (the lower one) only lives on [1, 2].
        oracle.domains[1] = vec![(1.0, 2.0)];
        let env = lower_envelope_circle(&[0, 1], &oracle);
        assert_eq!(env.id_at(0.5), Some(0));
        assert_eq!(env.id_at(1.5), Some(1));
        assert_eq!(env.id_at(3.0), Some(0));
        assert!(max_violation(&env, &[0, 1], &oracle, 500) < 1e-9);
    }

    #[test]
    fn envelope_all_gaps() {
        let mut oracle = Sinusoids::total(vec![(1.0, 0.0, 0.0)]);
        oracle.domains[0] = vec![];
        let env = lower_envelope_circle(&[0], &oracle);
        assert!(env.is_empty());
        let none = lower_envelope_circle(&[], &oracle);
        assert!(none.is_empty());
    }

    #[test]
    fn envelope_random_families_match_brute_force() {
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..30 {
            let n = 2 + (trial % 7);
            let params: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| (next() * 4.0 - 2.0, next() * 2.0, next() * TAU))
                .collect();
            let oracle = Sinusoids::total(params);
            let ids: Vec<usize> = (0..n).collect();
            let env = lower_envelope_circle(&ids, &oracle);
            let viol = max_violation(&env, &ids, &oracle, 2000);
            assert!(viol < 1e-7, "trial {trial}: violation {viol}");
        }
    }

    #[test]
    fn envelope_partial_random_families() {
        let mut state = 0xabcd1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..30 {
            let n = 2 + (trial % 5);
            let params: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| (next() * 4.0 - 2.0, next() * 2.0, next() * TAU))
                .collect();
            let mut oracle = Sinusoids::total(params);
            for d in oracle.domains.iter_mut() {
                let lo = next() * TAU;
                let hi = (lo + next() * 3.0).min(TAU);
                *d = if next() < 0.2 { vec![] } else { vec![(lo, hi)] };
            }
            let ids: Vec<usize> = (0..n).collect();
            let env = lower_envelope_circle(&ids, &oracle);
            let viol = max_violation(&env, &ids, &oracle, 2000);
            assert!(viol < 1e-7, "trial {trial}: violation {viol}");
        }
    }
}
