//! Circular (angle) arithmetic helpers used by the polar envelope machinery.
//!
//! All angles are normalized into `[0, 2π)`. Intervals on the circle may wrap
//! around `0`; [`AngleInterval::split_unwrapped`] cuts them into at most two
//! non-wrapping pieces so downstream sweeps can work on a linear domain.

use std::f64::consts::TAU;

/// Normalizes an angle into `[0, 2π)`.
#[inline]
pub fn normalize(theta: f64) -> f64 {
    let mut t = theta % TAU;
    if t < 0.0 {
        t += TAU;
    }
    // `%` can return TAU - tiny; fold exactly-TAU back to 0.
    if t >= TAU {
        t -= TAU;
    }
    t
}

/// Counter-clockwise angular distance from `from` to `to`, in `[0, 2π)`.
#[inline]
pub fn ccw_distance(from: f64, to: f64) -> f64 {
    normalize(to - from)
}

/// Shortest absolute angular difference between two angles, in `[0, π]`.
#[inline]
pub fn abs_difference(a: f64, b: f64) -> f64 {
    let d = normalize(a - b);
    d.min(TAU - d)
}

/// A closed arc of directions on the unit circle, from `lo` counter-clockwise
/// to `hi`. Stored with `lo ∈ [0, 2π)` and `hi ∈ [lo, lo + 2π]`, so a full
/// circle is representable as `[lo, lo + 2π]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AngleInterval {
    pub lo: f64,
    pub hi: f64,
}

impl AngleInterval {
    /// Interval from `lo` counter-clockwise to `hi` (both arbitrary reals).
    pub fn new(lo: f64, hi: f64) -> Self {
        let nlo = normalize(lo);
        let span = normalize(hi - lo);
        // A zero span means either an empty/point interval or (if callers
        // passed hi = lo + 2π) the full circle; disambiguate by raw width.
        let span = if span == 0.0 && (hi - lo).abs() >= TAU {
            TAU
        } else {
            span
        };
        AngleInterval {
            lo: nlo,
            hi: nlo + span,
        }
    }

    /// The full circle.
    pub fn full() -> Self {
        AngleInterval { lo: 0.0, hi: TAU }
    }

    /// Arc centered at `center` with half-width `half` (`half ≤ π`).
    pub fn centered(center: f64, half: f64) -> Self {
        AngleInterval::new(center - half, center + half)
    }

    /// Angular width in `[0, 2π]`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// `true` iff the normalized angle `theta` lies in the closed interval.
    pub fn contains(&self, theta: f64) -> bool {
        let t = normalize(theta);
        if t >= self.lo && t <= self.hi {
            return true;
        }
        let t2 = t + TAU;
        t2 >= self.lo && t2 <= self.hi
    }

    /// Like [`contains`](Self::contains) but with a symmetric tolerance
    /// `tol` (radians) at both ends.
    pub fn contains_with_tol(&self, theta: f64, tol: f64) -> bool {
        if self.width() >= TAU {
            return true;
        }
        let widened = AngleInterval {
            lo: self.lo - tol,
            hi: self.hi + tol,
        };
        let t = normalize(theta);
        (t >= widened.lo && t <= widened.hi)
            || (t + TAU >= widened.lo && t + TAU <= widened.hi)
            || (t - TAU >= widened.lo && t - TAU <= widened.hi)
    }

    /// Splits the interval at multiples of `2π` into at most two pieces
    /// `(lo, hi)` with `0 ≤ lo ≤ hi ≤ 2π`, suitable for a linear sweep over
    /// `[0, 2π]`.
    pub fn split_unwrapped(&self) -> Vec<(f64, f64)> {
        if self.width() >= TAU {
            return vec![(0.0, TAU)];
        }
        if self.hi <= TAU {
            vec![(self.lo, self.hi)]
        } else {
            vec![(self.lo, TAU), (0.0, self.hi - TAU)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn normalize_folds() {
        assert_eq!(normalize(0.0), 0.0);
        assert!((normalize(-PI) - PI).abs() < 1e-15);
        assert!((normalize(3.0 * PI) - PI).abs() < 1e-12);
        assert!(normalize(TAU) < 1e-15);
        assert!(normalize(-1e-12) < TAU);
    }

    #[test]
    fn ccw_and_abs() {
        assert!((ccw_distance(0.1, 0.3) - 0.2).abs() < 1e-15);
        assert!((ccw_distance(0.3, 0.1) - (TAU - 0.2)).abs() < 1e-12);
        assert!((abs_difference(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn interval_contains() {
        let iv = AngleInterval::new(6.0, 0.5); // wraps through 0
        assert!(iv.contains(6.2));
        assert!(iv.contains(0.2));
        assert!(!iv.contains(3.0));
        assert!(iv.contains(6.0));
        assert!(iv.contains(0.5));

        let full = AngleInterval::full();
        assert!(full.contains(1.0));
        assert!((full.width() - TAU).abs() < 1e-15);
    }

    #[test]
    fn interval_split() {
        let iv = AngleInterval::new(1.0, 2.0);
        assert_eq!(iv.split_unwrapped(), vec![(1.0, 2.0)]);

        let wrap = AngleInterval::new(6.0, 0.5);
        let parts = wrap.split_unwrapped();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 6.0);
        assert!((parts[0].1 - TAU).abs() < 1e-15);
        assert_eq!(parts[1].0, 0.0);
        assert!((parts[1].1 - normalize(0.5)).abs() < 1e-12);
    }

    #[test]
    fn interval_centered_and_tol() {
        let iv = AngleInterval::centered(0.0, 0.5);
        assert!(iv.contains(TAU - 0.4));
        assert!(iv.contains(0.4));
        assert!(!iv.contains(1.0));
        assert!(iv.contains_with_tol(0.55, 0.1));
        assert!(!iv.contains_with_tol(0.7, 0.1));
    }
}
