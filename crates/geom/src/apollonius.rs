//! Apollonius-type tangency systems.
//!
//! Every vertex of the nonzero Voronoi diagram `V≠0(P)` (Section 2 of the
//! paper) is the center of a *witness disk* `W` that touches three input
//! disks with prescribed orientations: externally (the witness and the disk
//! have disjoint interiors, `‖p − c_i‖ = R + r_i`) or internally (the witness
//! contains the disk, `‖p − c_i‖ = R − r_i`).
//!
//! Given three circles and a sign per circle (`+1` external, `−1` internal),
//! [`tangent_circles`] returns every witness `(center, radius)` solving
//!
//! ```text
//!   ‖p − c_i‖ = R + s_i·r_i ,  R ≥ 0 ,  R + s_i·r_i ≥ 0   (i = 1, 2, 3)
//! ```
//!
//! The system reduces to two linear equations (differences of the squared
//! equations) plus one quadratic, so there are at most two solutions. A
//! dedicated path handles collinear centers (which the paper's lower-bound
//! constructions produce on purpose).

use crate::circle::Circle;
use crate::point::{Point, Vector};

/// Orientation of a tangency constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tangency {
    /// Witness disk and input disk touch with disjoint interiors:
    /// `‖p − c‖ = R + r`.
    External,
    /// Witness disk contains the input disk: `‖p − c‖ = R − r`.
    Internal,
}

impl Tangency {
    #[inline]
    fn sign(self) -> f64 {
        match self {
            Tangency::External => 1.0,
            Tangency::Internal => -1.0,
        }
    }
}

/// A witness disk: a solution of the tangency system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WitnessDisk {
    pub center: Point,
    pub radius: f64,
}

/// Maximum admissible relative residual for a returned solution.
const RESIDUAL_TOL: f64 = 1e-7;

/// Solves the three-circle tangency system; returns up to two witness disks.
///
/// Solutions are validated against the original equations; near-degenerate
/// systems (identical constraints, concentric circles) may return no
/// solutions.
pub fn tangent_circles(circles: [Circle; 3], signs: [Tangency; 3]) -> Vec<WitnessDisk> {
    let scale = circles
        .iter()
        .map(|c| c.center.to_vector().norm() + c.radius)
        .fold(1.0f64, f64::max);

    let mut sols = solve(circles, signs, scale);
    sols.retain(|w| validate(w, &circles, &signs, scale));
    dedup(sols, scale)
}

fn solve(circles: [Circle; 3], signs: [Tangency; 3], scale: f64) -> Vec<WitnessDisk> {
    let c1 = circles[0].center;
    let d2 = circles[1].center - c1;
    let d3 = circles[2].center - c1;
    let cross = d2.cross(d3);
    // Conditioning threshold: treat centers as collinear when the triangle
    // they span is extremely thin relative to the configuration scale.
    let thin = cross.abs() <= 1e-12 * scale * scale;
    if thin {
        collinear_path(circles, signs, scale)
    } else {
        general_path(circles, signs)
    }
}

/// Non-collinear centers: express `p` as an affine function of `R`, then
/// substitute into the first circle's equation to get a quadratic in `R`.
fn general_path(circles: [Circle; 3], signs: [Tangency; 3]) -> Vec<WitnessDisk> {
    let (c1, r1, s1) = (circles[0].center, circles[0].radius, signs[0].sign());
    let (c2, r2, s2) = (circles[1].center, circles[1].radius, signs[1].sign());
    let (c3, r3, s3) = (circles[2].center, circles[2].radius, signs[2].sign());

    // Subtract equation 1 from equations 2 and 3:
    //   2(c_i − c_1)·p + 2(s_i r_i − s_1 r_1) R = (|c_i|² − r_i²) − (|c_1|² − r_1²)
    let d2 = c2 - c1;
    let d3 = c3 - c1;
    let e2 = s2 * r2 - s1 * r1;
    let e3 = s3 * r3 - s1 * r1;
    let b2 = (c2.to_vector().norm2() - r2 * r2) - (c1.to_vector().norm2() - r1 * r1);
    let b3 = (c3.to_vector().norm2() - r3 * r3) - (c1.to_vector().norm2() - r1 * r1);

    // Solve  [2 d2; 2 d3] p = [b2 − 2 e2 R; b3 − 2 e3 R]  →  p = p0 + R pd.
    let det = 4.0 * d2.cross(d3);
    let inv = 1.0 / det;
    // p0: RHS (b2, b3); pd: RHS (−2 e2, −2 e3).
    let p0 = Vector::new(
        (b2 * 2.0 * d3.y - b3 * 2.0 * d2.y) * inv,
        (b3 * 2.0 * d2.x - b2 * 2.0 * d3.x) * inv,
    );
    let pd = Vector::new(
        (-2.0 * e2 * 2.0 * d3.y + 2.0 * e3 * 2.0 * d2.y) * inv,
        (-2.0 * e3 * 2.0 * d2.x + 2.0 * e2 * 2.0 * d3.x) * inv,
    );

    // Substitute into |p − c1|² = (R + s1 r1)²:
    //   (|pd|² − 1) R² + 2 (w·pd − s1 r1) R + (|w|² − r1²) = 0,  w = p0 − c1.
    let w = p0 - c1.to_vector();
    let qa = pd.norm2() - 1.0;
    let qb = 2.0 * (w.dot(pd) - s1 * r1);
    let qc = w.norm2() - r1 * r1;

    solve_quadratic(qa, qb, qc)
        .into_iter()
        .map(|r| WitnessDisk {
            center: Point::ORIGIN + p0 + pd * r,
            radius: r,
        })
        .collect()
}

/// Collinear centers: rotate so the baseline is the x-axis, solve the 2×2
/// linear system for `(p_t, R)`, recover the off-axis coordinate as `±√·`.
fn collinear_path(circles: [Circle; 3], signs: [Tangency; 3], scale: f64) -> Vec<WitnessDisk> {
    // Build an orthonormal frame along the most separated pair of centers.
    let (ca, cb) = {
        let d01 = circles[0].center.dist(circles[1].center);
        let d02 = circles[0].center.dist(circles[2].center);
        let d12 = circles[1].center.dist(circles[2].center);
        if d01 >= d02 && d01 >= d12 {
            (circles[0].center, circles[1].center)
        } else if d02 >= d12 {
            (circles[0].center, circles[2].center)
        } else {
            (circles[1].center, circles[2].center)
        }
    };
    let axis = match (cb - ca).normalized() {
        Some(u) => u,
        None => return vec![], // all centers coincide: concentric degenerate
    };
    let nrm = axis.perp();
    let origin = ca;

    // Coordinates (t_i, n_i) of the centers in the rotated frame.
    let coords: Vec<(f64, f64)> = circles
        .iter()
        .map(|c| {
            let v = c.center - origin;
            (v.dot(axis), v.dot(nrm))
        })
        .collect();
    let n0 = coords[0].1;
    if coords.iter().any(|&(_, n)| (n - n0).abs() > 1e-9 * scale) {
        // Not actually collinear — conditioning said "thin" but the general
        // path would divide by a tiny determinant; give up gracefully.
        return vec![];
    }

    let (t1, r1, s1) = (coords[0].0, circles[0].radius, signs[0].sign());
    let (t2, r2, s2) = (coords[1].0, circles[1].radius, signs[1].sign());
    let (t3, r3, s3) = (coords[2].0, circles[2].radius, signs[2].sign());

    // (p_t − t_i)² + h² = (R + s_i r_i)², h = p_n − n0.  Differences:
    //   2(t_i − t_1) p_t + 2(s_i r_i − s_1 r_1) R = (t_i² − r_i²) − (t_1² − r_1²)
    let a11 = 2.0 * (t2 - t1);
    let a12 = 2.0 * (s2 * r2 - s1 * r1);
    let b1 = (t2 * t2 - r2 * r2) - (t1 * t1 - r1 * r1);
    let a21 = 2.0 * (t3 - t1);
    let a22 = 2.0 * (s3 * r3 - s1 * r1);
    let b2 = (t3 * t3 - r3 * r3) - (t1 * t1 - r1 * r1);

    let det = a11 * a22 - a12 * a21;
    if det.abs() <= 1e-14 * scale * scale {
        return vec![];
    }
    let pt = (b1 * a22 - b2 * a12) / det;
    let rr = (a11 * b2 - a21 * b1) / det;
    if rr < -1e-9 * scale {
        return vec![];
    }
    let r = rr.max(0.0);
    let h2 = (r + s1 * r1) * (r + s1 * r1) - (pt - t1) * (pt - t1);
    if h2 < -1e-9 * scale * scale {
        return vec![];
    }
    let h = h2.max(0.0).sqrt();
    let base = origin + axis * pt + nrm * n0;
    if h == 0.0 {
        vec![WitnessDisk {
            center: base,
            radius: r,
        }]
    } else {
        vec![
            WitnessDisk {
                center: base + nrm * h,
                radius: r,
            },
            WitnessDisk {
                center: base - nrm * h,
                radius: r,
            },
        ]
    }
}

/// Real roots of `a x² + b x + c = 0` (degrades to linear when `|a|` tiny).
fn solve_quadratic(a: f64, b: f64, c: f64) -> Vec<f64> {
    if a.abs() <= 1e-14 * (b.abs() + c.abs()).max(1.0) {
        if b.abs() <= f64::MIN_POSITIVE {
            return vec![];
        }
        return vec![-c / b];
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return vec![];
    }
    let sd = disc.sqrt();
    // Numerically stable form avoiding cancellation.
    let q = -0.5 * (b + b.signum() * sd);
    if q == 0.0 {
        return vec![0.0];
    }
    let x1 = q / a;
    let x2 = c / q;
    if (x1 - x2).abs() <= 1e-12 * (x1.abs() + x2.abs()).max(1.0) {
        vec![x1]
    } else {
        vec![x1, x2]
    }
}

fn validate(w: &WitnessDisk, circles: &[Circle; 3], signs: &[Tangency; 3], scale: f64) -> bool {
    if w.radius < -RESIDUAL_TOL * scale || !w.center.is_finite() || !w.radius.is_finite() {
        return false;
    }
    for (c, s) in circles.iter().zip(signs) {
        let target = w.radius + s.sign() * c.radius;
        if target < -RESIDUAL_TOL * scale {
            return false;
        }
        let resid = (w.center.dist(c.center) - target).abs();
        if resid > RESIDUAL_TOL * scale.max(w.radius) {
            return false;
        }
    }
    true
}

fn dedup(mut sols: Vec<WitnessDisk>, scale: f64) -> Vec<WitnessDisk> {
    let tol = 1e-7 * scale;
    let mut out: Vec<WitnessDisk> = Vec::with_capacity(sols.len());
    sols.retain(|w| w.radius >= 0.0 || w.radius >= -tol);
    for w in sols {
        let w = WitnessDisk {
            center: w.center,
            radius: w.radius.max(0.0),
        };
        if !out
            .iter()
            .any(|o| o.center.dist(w.center) <= tol && (o.radius - w.radius).abs() <= tol)
        {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use Tangency::{External, Internal};

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    fn assert_witness(w: &WitnessDisk, circles: &[Circle; 3], signs: &[Tangency; 3]) {
        for (ci, si) in circles.iter().zip(signs) {
            let target = w.radius + si.sign() * ci.radius;
            let resid = (w.center.dist(ci.center) - target).abs();
            assert!(
                resid < 1e-6 * (1.0 + w.radius),
                "residual {resid} for witness {w:?}"
            );
        }
    }

    #[test]
    fn three_unit_circles_external() {
        // Symmetric configuration: centers on an equilateral triangle.
        let circles = [c(0.0, 0.0, 1.0), c(4.0, 0.0, 1.0), c(2.0, 3.0, 1.0)];
        let signs = [External, External, External];
        let sols = tangent_circles(circles, signs);
        assert!(!sols.is_empty());
        for w in &sols {
            assert_witness(w, &circles, &signs);
        }
    }

    #[test]
    fn point_sites_reduce_to_circumcircle() {
        // Zero radii: the tangent circle through three points is the
        // circumcircle regardless of signs.
        let circles = [c(0.0, 0.0, 0.0), c(4.0, 0.0, 0.0), c(0.0, 3.0, 0.0)];
        let sols = tangent_circles(circles, [External, External, External]);
        assert_eq!(sols.len(), 1);
        let cc = Circle::circumcircle(
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        )
        .unwrap();
        assert!(sols[0].center.dist(cc.center) < 1e-9);
        assert!((sols[0].radius - cc.radius).abs() < 1e-9);
    }

    #[test]
    fn internal_tangency_contains_disk() {
        let circles = [c(-3.0, 0.0, 1.0), c(3.0, 0.0, 1.0), c(0.0, 1.0, 0.5)];
        let signs = [External, External, Internal];
        let sols = tangent_circles(circles, signs);
        assert!(!sols.is_empty());
        for w in &sols {
            assert_witness(w, &circles, &signs);
            // Internal tangency really contains the disk (tangency makes the
            // containment tight, so allow rounding slack).
            let slack = w.center.dist(circles[2].center) + circles[2].radius - w.radius;
            assert!(slack <= 1e-7 * (1.0 + w.radius), "slack {slack}");
        }
    }

    #[test]
    fn collinear_centers() {
        // All centers on the x-axis (as in the paper's Θ(n²) construction,
        // Theorem 2.10): solutions come in mirror pairs.
        let circles = [c(-4.0, 0.0, 1.0), c(4.0, 0.0, 1.0), c(0.0, 0.0, 1.0)];
        let signs = [External, External, Internal];
        let sols = tangent_circles(circles, signs);
        assert_eq!(sols.len(), 2, "mirror pair expected, got {sols:?}");
        for w in &sols {
            assert_witness(w, &circles, &signs);
        }
        assert!((sols[0].center.y + sols[1].center.y).abs() < 1e-9);
    }

    #[test]
    fn no_solution_when_infeasible() {
        // Asking a witness to contain a huge disk while externally touching
        // two tiny far-away ones is infeasible.
        let circles = [c(0.0, 0.0, 100.0), c(300.0, 0.0, 0.1), c(0.0, 300.0, 0.1)];
        let signs = [Internal, External, External];
        let sols = tangent_circles(circles, signs);
        for w in &sols {
            assert_witness(w, &circles, &signs);
        }
        // Either no solutions or only validated ones — never garbage.
    }

    #[test]
    fn quadratic_solver() {
        let r = solve_quadratic(1.0, -3.0, 2.0);
        assert_eq!(r.len(), 2);
        let (lo, hi) = (r[0].min(r[1]), r[0].max(r[1]));
        assert!((lo - 1.0).abs() < 1e-12 && (hi - 2.0).abs() < 1e-12);
        assert_eq!(solve_quadratic(0.0, 2.0, -4.0), vec![2.0]);
        assert!(solve_quadratic(1.0, 0.0, 1.0).is_empty());
        let dbl = solve_quadratic(1.0, -2.0, 1.0);
        assert_eq!(dbl.len(), 1);
        assert!((dbl[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_configurations_have_valid_witnesses() {
        // Light-weight deterministic fuzz: pseudo-random circle triples.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let circles = [
                c(next() * 20.0 - 10.0, next() * 20.0 - 10.0, next() * 2.0),
                c(next() * 20.0 - 10.0, next() * 20.0 - 10.0, next() * 2.0),
                c(next() * 20.0 - 10.0, next() * 20.0 - 10.0, next() * 2.0),
            ];
            for signs in [
                [External, External, External],
                [External, External, Internal],
                [Internal, External, External],
            ] {
                for w in tangent_circles(circles, signs) {
                    assert_witness(&w, &circles, &signs);
                }
            }
        }
    }
}
