//! Circles and disks.
//!
//! A [`Circle`] doubles as a *disk* (its closed interior) throughout the
//! workspace — the uncertainty regions of the paper's continuous model are
//! disks `D_i`, and the "witness disks" certifying the vertices of `V≠0` are
//! disks tangent to three of them.

use crate::point::Point;
use crate::predicates::orient2d;

/// A circle (equivalently, the closed disk it bounds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative radius {radius}");
        Circle { center, radius }
    }

    /// A zero-radius circle (a point site).
    pub fn point(center: Point) -> Self {
        Circle {
            center,
            radius: 0.0,
        }
    }

    /// Area of the disk.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Minimum distance from `q` to the disk: `δ(q) = max(‖q − c‖ − r, 0)`
    /// (Section 2.1 of the paper).
    #[inline]
    pub fn min_dist(&self, q: Point) -> f64 {
        (self.center.dist(q) - self.radius).max(0.0)
    }

    /// Maximum distance from `q` to the disk: `Δ(q) = ‖q − c‖ + r`.
    #[inline]
    pub fn max_dist(&self, q: Point) -> f64 {
        self.center.dist(q) + self.radius
    }

    /// `true` iff `q` lies in the closed disk.
    #[inline]
    pub fn contains(&self, q: Point) -> bool {
        q.dist2(self.center) <= self.radius * self.radius
    }

    /// `true` iff the closed disks share at least one point.
    #[inline]
    pub fn intersects_disk(&self, other: &Circle) -> bool {
        self.center.dist(other.center) <= self.radius + other.radius
    }

    /// `true` iff `other`'s closed disk is contained in this closed disk.
    #[inline]
    pub fn contains_disk(&self, other: &Circle) -> bool {
        self.center.dist(other.center) + other.radius <= self.radius
    }

    /// Intersection points of the two circles' *boundaries*, if the circles
    /// intersect transversally or tangentially. Returns `None` when disjoint
    /// or nested, `Some((p, p))` for tangency.
    pub fn intersection_points(&self, other: &Circle) -> Option<(Point, Point)> {
        let d = self.center.dist(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if d > r1 + r2 || d < (r1 - r2).abs() || d == 0.0 {
            return None;
        }
        // Distance from self.center to the radical line.
        let a = (d * d + r1 * r1 - r2 * r2) / (2.0 * d);
        let h2 = r1 * r1 - a * a;
        let h = h2.max(0.0).sqrt();
        let dir = (other.center - self.center) / d;
        let mid = self.center + dir * a;
        let off = dir.perp() * h;
        Some((mid + off, mid - off))
    }

    /// Area of the intersection of the two closed disks (a "lens").
    ///
    /// This is the building block of the analytic distance cdf `G_{q,i}(r)`
    /// for uniform-disk uncertain points: the probability that `P_i` lies
    /// within distance `r` of `q` is `lens_area(disk(q, r), D_i) / area(D_i)`.
    pub fn lens_area(&self, other: &Circle) -> f64 {
        let d = self.center.dist(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if r1 == 0.0 || r2 == 0.0 || d >= r1 + r2 {
            return 0.0;
        }
        if d <= (r1 - r2).abs() {
            let rmin = r1.min(r2);
            return std::f64::consts::PI * rmin * rmin;
        }
        let alpha = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
        let beta = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
        let t1 = r1 * r1 * alpha.acos();
        let t2 = r2 * r2 * beta.acos();
        let k = (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2);
        t1 + t2 - 0.5 * k.max(0.0).sqrt()
    }

    /// Circumcircle of three points; `None` when (nearly) collinear.
    pub fn circumcircle(a: Point, b: Point, c: Point) -> Option<Circle> {
        // Solve |p-a|² = |p-b|² = |p-c|² as a 2x2 linear system.
        let det = orient2d(a, b, c);
        if det == 0.0 {
            return None;
        }
        let d = 2.0 * ((a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x));
        if d == 0.0 {
            return None;
        }
        let a2 = a.x * a.x + a.y * a.y - (c.x * c.x + c.y * c.y);
        let b2 = b.x * b.x + b.y * b.y - (c.x * c.x + c.y * c.y);
        let ux = (a2 * (b.y - c.y) - b2 * (a.y - c.y)) / d;
        let uy = (b2 * (a.x - c.x) - a2 * (b.x - c.x)) / d;
        let center = Point::new(ux, uy);
        if !center.is_finite() {
            return None;
        }
        // Use the max over the three defining points to be conservative.
        let r = center.dist(a).max(center.dist(b)).max(center.dist(c));
        Some(Circle::new(center, r))
    }

    /// Circle with the segment `a`–`b` as diameter.
    pub fn diametral(a: Point, b: Point) -> Circle {
        Circle::new(a.midpoint(b), 0.5 * a.dist(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn distances() {
        let d = Circle::new(Point::new(0.0, 0.0), 5.0);
        let q = Point::new(6.0, 8.0); // dist 10 from center — the paper's Fig. 1
        assert_eq!(d.min_dist(q), 5.0);
        assert_eq!(d.max_dist(q), 15.0);
        assert_eq!(d.min_dist(Point::new(1.0, 0.0)), 0.0);
        assert!(d.contains(Point::new(3.0, 4.0)));
        assert!(!d.contains(Point::new(3.1, 4.0)));
    }

    #[test]
    fn intersection_points_symmetry() {
        let c1 = Circle::new(Point::new(0.0, 0.0), 2.0);
        let c2 = Circle::new(Point::new(2.0, 0.0), 2.0);
        let (p, q) = c1.intersection_points(&c2).unwrap();
        for pt in [p, q] {
            assert!((pt.dist(c1.center) - 2.0).abs() < 1e-12);
            assert!((pt.dist(c2.center) - 2.0).abs() < 1e-12);
        }
        assert!((p.x - 1.0).abs() < 1e-12 && (q.x - 1.0).abs() < 1e-12);

        // Disjoint and nested cases.
        let far = Circle::new(Point::new(10.0, 0.0), 1.0);
        assert!(c1.intersection_points(&far).is_none());
        let inner = Circle::new(Point::new(0.1, 0.0), 0.5);
        assert!(c1.intersection_points(&inner).is_none());
        assert!(c1.contains_disk(&inner));
        assert!(!inner.contains_disk(&c1));
    }

    #[test]
    fn lens_area_limits() {
        let c1 = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Identical circles: full area.
        assert!((c1.lens_area(&c1) - PI).abs() < 1e-12);
        // Disjoint: zero.
        let c2 = Circle::new(Point::new(3.0, 0.0), 1.0);
        assert_eq!(c1.lens_area(&c2), 0.0);
        // Nested: area of the smaller.
        let c3 = Circle::new(Point::new(0.2, 0.0), 0.3);
        assert!((c1.lens_area(&c3) - PI * 0.09).abs() < 1e-12);
        // Half-overlap sanity: monotone in distance.
        let mut last = PI;
        for k in 1..=20 {
            let d = 2.0 * k as f64 / 20.0;
            let c = Circle::new(Point::new(d, 0.0), 1.0);
            let a = c1.lens_area(&c);
            assert!(a <= last + 1e-12, "lens area must decrease with distance");
            last = a;
        }
        assert!(last.abs() < 1e-9);
    }

    #[test]
    fn lens_area_matches_monte_carlo() {
        // Deterministic grid quadrature cross-check.
        let c1 = Circle::new(Point::new(0.0, 0.0), 1.5);
        let c2 = Circle::new(Point::new(1.0, 0.5), 1.0);
        let n = 800;
        let lo = -2.0;
        let hi = 2.5;
        let step = (hi - lo) / n as f64;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(lo + (i as f64 + 0.5) * step, lo + (j as f64 + 0.5) * step);
                if c1.contains(p) && c2.contains(p) {
                    hits += 1;
                }
            }
        }
        let approx = hits as f64 * step * step;
        let exact = c1.lens_area(&c2);
        assert!(
            (approx - exact).abs() < 0.01,
            "grid {approx} vs exact {exact}"
        );
    }

    #[test]
    fn circumcircle_properties() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = Point::new(0.0, 3.0);
        let cc = Circle::circumcircle(a, b, c).unwrap();
        for p in [a, b, c] {
            assert!((cc.center.dist(p) - cc.radius).abs() < 1e-12);
        }
        // Collinear points have no circumcircle.
        assert!(Circle::circumcircle(a, b, Point::new(8.0, 0.0)).is_none());
    }

    #[test]
    fn diametral_circle() {
        let c = Circle::diametral(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        assert_eq!(c.center, Point::new(1.0, 0.0));
        assert_eq!(c.radius, 1.0);
        assert!(c.contains(Point::new(1.0, 0.99)));
    }
}
