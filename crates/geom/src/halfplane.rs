//! Halfplane intersection.
//!
//! For discrete uncertain points, the region where `P_j` surely beats `P_i`
//! (`Φ_j(x) ≤ φ_i(x)`, Lemma 2.13 of the paper) is an intersection of at most
//! `k²` halfplanes `ℓ_ab(x) ≤ 0` with
//! `ℓ_ab(x) = ‖p_jb‖² − ‖p_ia‖² − 2⟨x, p_jb − p_ia⟩`. We intersect the
//! halfplanes by successive convex clipping against a caller-provided
//! bounding box, which is exactly how the diagram construction consumes the
//! result (everything is clipped to a working box anyway).

use crate::point::{Aabb, Point, Vector};
use crate::polygon::{box_polygon, clip_convex_by_halfplane, dedup_vertices, signed_area};

/// The halfplane `{ x : n·x ≤ c }`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Halfplane {
    pub n: Vector,
    pub c: f64,
}

impl Halfplane {
    pub fn new(n: Vector, c: f64) -> Self {
        Halfplane { n, c }
    }

    /// The halfplane of points at least as close to `a` as to `b`
    /// (`‖x − a‖ ≤ ‖x − b‖`).
    pub fn closer_to(a: Point, b: Point) -> Self {
        // ‖x−a‖² ≤ ‖x−b‖²  ⇔  2(b−a)·x ≤ ‖b‖² − ‖a‖²
        let n = (b - a) * 2.0;
        let c = b.to_vector().norm2() - a.to_vector().norm2();
        Halfplane { n, c }
    }

    /// Signed value `n·x − c` (≤ 0 inside).
    #[inline]
    pub fn eval(&self, x: Point) -> f64 {
        self.n.dot(x.to_vector()) - self.c
    }

    #[inline]
    pub fn contains(&self, x: Point) -> bool {
        self.eval(x) <= 0.0
    }

    /// A point on the boundary line (requires `n ≠ 0`).
    pub fn boundary_point(&self) -> Option<Point> {
        let n2 = self.n.norm2();
        if n2 <= f64::MIN_POSITIVE {
            return None;
        }
        Some(Point::ORIGIN + self.n * (self.c / n2))
    }
}

/// Intersects the halfplanes, clipped to `bbox`. Returns the convex polygon
/// (counter-clockwise), or an empty vector when the intersection ∩ box is
/// empty (or degenerate to measure zero).
///
/// Halfplanes with a (near-)zero normal are treated as "whole plane" when
/// `c ≥ 0` and "empty" when `c < 0`.
pub fn intersect_halfplanes(planes: &[Halfplane], bbox: &Aabb) -> Vec<Point> {
    let mut poly = box_polygon(bbox);
    for hp in planes {
        let n2 = hp.n.norm2();
        if n2 <= f64::MIN_POSITIVE {
            if hp.c < 0.0 {
                return vec![];
            }
            continue;
        }
        let p0 = match hp.boundary_point() {
            Some(p) => p,
            None => continue,
        };
        poly = clip_convex_by_halfplane(&poly, p0, hp.n);
        if poly.len() < 3 {
            return vec![];
        }
    }
    dedup_vertices(&mut poly, 1e-12 * bbox.radius().max(1.0));
    if poly.len() < 3 || signed_area(&poly).abs() < f64::MIN_POSITIVE {
        vec![]
    } else {
        poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::convex_contains;

    fn bbox() -> Aabb {
        Aabb::from_corners(Point::new(-10.0, -10.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn quadrant() {
        // x ≥ 0 and y ≥ 0 (as n·x ≤ c forms).
        let planes = [
            Halfplane::new(Vector::new(-1.0, 0.0), 0.0),
            Halfplane::new(Vector::new(0.0, -1.0), 0.0),
        ];
        let poly = intersect_halfplanes(&planes, &bbox());
        assert!((crate::polygon::signed_area(&poly) - 100.0).abs() < 1e-9);
        assert!(convex_contains(&poly, Point::new(5.0, 5.0)));
        assert!(!convex_contains(&poly, Point::new(-1.0, 5.0)));
    }

    #[test]
    fn empty_intersection() {
        let planes = [
            Halfplane::new(Vector::new(1.0, 0.0), -1.0),  // x ≤ -1
            Halfplane::new(Vector::new(-1.0, 0.0), -1.0), // x ≥ 1
        ];
        assert!(intersect_halfplanes(&planes, &bbox()).is_empty());
    }

    #[test]
    fn bisector_halfplane() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let hp = Halfplane::closer_to(a, b);
        assert!(hp.contains(Point::new(1.0, 3.0)));
        assert!(!hp.contains(Point::new(3.0, -2.0)));
        assert!(hp.eval(Point::new(2.0, 7.0)).abs() < 1e-12); // on the bisector

        let planes = [hp];
        let poly = intersect_halfplanes(&planes, &bbox());
        // The bisector is x = 2, so the kept part of the 20×20 box has width
        // 12 and area 240.
        assert!((crate::polygon::signed_area(&poly) - 240.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_normals() {
        let ok = Halfplane::new(Vector::new(0.0, 0.0), 1.0);
        let bad = Halfplane::new(Vector::new(0.0, 0.0), -1.0);
        assert_eq!(intersect_halfplanes(&[ok], &bbox()).len(), 4);
        assert!(intersect_halfplanes(&[bad], &bbox()).is_empty());
    }

    #[test]
    fn random_intersections_are_correct() {
        let mut state = 123u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        for _ in 0..50 {
            let planes: Vec<Halfplane> = (0..8)
                .map(|_| Halfplane::new(Vector::new(next(), next()), next() * 3.0))
                .collect();
            let poly = intersect_halfplanes(&planes, &bbox());
            if poly.is_empty() {
                continue;
            }
            // Every vertex must satisfy all constraints (within tolerance),
            // and the centroid strictly.
            for v in &poly {
                for hp in &planes {
                    assert!(hp.eval(*v) <= 1e-7, "vertex violates constraint");
                }
            }
            if let Some(c) = crate::polygon::centroid(&poly) {
                for hp in &planes {
                    assert!(hp.eval(c) <= 1e-7);
                }
            }
        }
    }
}
