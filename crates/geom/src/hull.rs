//! Convex hulls (Andrew's monotone chain) and farthest-point queries.
//!
//! For a discrete uncertain point `P_i`, `Δ_i(q) = max_j ‖q − p_ij‖` is
//! always attained at a vertex of the convex hull of `P_i` (the distance
//! function is convex), so hulls let us evaluate `Δ_i` by scanning only hull
//! vertices. We deliberately use a *linear* scan over hull vertices instead
//! of the folklore "binary search for the farthest vertex": the vertex
//! distance sequence of a convex polygon is **not** unimodal in general, so
//! binary/ternary search is incorrect; with the paper's small per-point
//! description complexity `k`, the linear scan is both correct and fast.

use crate::point::Point;
use crate::predicates::orient2d;

/// Convex hull of `points` in counter-clockwise order, with collinear
/// boundary points removed. Returns fewer than 3 points for degenerate
/// inputs (all points equal / collinear: the extreme points are returned).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a == b);
    if pts.len() < 3 {
        return pts;
    }
    let mut lower: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2 && orient2d(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && orient2d(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// A convex hull prepared for repeated farthest-point queries.
#[derive(Clone, Debug)]
pub struct FarthestPointHull {
    /// Hull vertices, counter-clockwise (may be 1 or 2 points when the input
    /// is degenerate).
    pub vertices: Vec<Point>,
}

impl FarthestPointHull {
    /// Builds the hull of `points` (which must be non-empty).
    pub fn build(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "empty point set");
        let hull = convex_hull(points);
        let vertices = if hull.is_empty() {
            vec![points[0]]
        } else {
            hull
        };
        FarthestPointHull { vertices }
    }

    /// The farthest input point from `q` and its distance.
    ///
    /// Uses `Point::dist` so the value is *bitwise identical* to the
    /// distances computed by every other query path — the strict
    /// inequalities of Lemma 2.1 rely on exact agreement when locations are
    /// shared between uncertain points.
    pub fn farthest(&self, q: Point) -> (Point, f64) {
        let mut best = self.vertices[0];
        let mut best_d = q.dist(best);
        for &v in &self.vertices[1..] {
            let d = q.dist(v);
            if d > best_d {
                best_d = d;
                best = v;
            }
        }
        (best, best_d)
    }

    /// `Δ(q)`: the maximum distance from `q` to the point set.
    #[inline]
    pub fn max_dist(&self, q: Point) -> f64 {
        self.farthest(q).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(1.0, 1.0),
            p(0.5, 0.7),
            p(1.0, 0.0), // collinear boundary point must be dropped
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        // Counter-clockwise orientation.
        for i in 0..h.len() {
            let a = h[i];
            let b = h[(i + 1) % h.len()];
            let c = h[(i + 2) % h.len()];
            assert!(orient2d(a, b, c) > 0.0);
        }
    }

    #[test]
    fn hull_degenerate() {
        assert_eq!(convex_hull(&[]).len(), 0);
        assert_eq!(convex_hull(&[p(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull(&[p(1.0, 1.0), p(1.0, 1.0)]).len(), 1);
        let collinear = convex_hull(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]);
        assert_eq!(collinear.len(), 2); // extreme points only
    }

    #[test]
    fn farthest_matches_brute_force() {
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
        };
        for _ in 0..100 {
            let pts: Vec<Point> = (0..12).map(|_| p(next(), next())).collect();
            let hull = FarthestPointHull::build(&pts);
            for _ in 0..10 {
                let q = p(next() * 3.0, next() * 3.0);
                let brute = pts
                    .iter()
                    .map(|&t| q.dist(t))
                    .fold(f64::NEG_INFINITY, f64::max);
                let (_, got) = hull.farthest(q);
                assert!((got - brute).abs() < 1e-9, "got {got}, brute {brute}");
            }
        }
    }

    #[test]
    fn farthest_single_point() {
        let hull = FarthestPointHull::build(&[p(3.0, 4.0)]);
        assert_eq!(hull.max_dist(p(0.0, 0.0)), 5.0);
    }
}
