//! The curves `γ_ij = { x : δ_i(x) = Δ_j(x) }` in polar form.
//!
//! For two uncertainty disks `D_i = (c_i, r_i)` and `D_j = (c_j, r_j)` the
//! locus where the minimum distance to `D_i` equals the maximum distance to
//! `D_j` satisfies `‖x − c_i‖ − ‖x − c_j‖ = r_i + r_j`: one branch of a
//! hyperbola with foci `c_i, c_j`. Writing `x = c_i + r·u(θ)` with
//! `v = c_j − c_i` and `a = r_i + r_j` yields the closed form
//!
//! ```text
//!   r(θ) = (‖v‖² − a²) / ( 2 (u(θ)·v − a) ) ,   defined where u(θ)·v > a.
//! ```
//!
//! When `‖v‖ ≤ a` (the disks' Minkowski-sum condition fails) the curve is
//! empty: `D_j` can never exclude `D_i` anywhere, i.e. `γ_ij ≡ +∞`
//! (see Lemma 2.2 of the paper). The angular domain is the open arc of
//! half-width `arccos(a/‖v‖)` centered on the direction of `v`.
//!
//! Two branches around the *same* focus cross where
//! `K₁(u·v₂ − a₂) = K₂(u·v₁ − a₁)` (`K = ‖v‖² − a²`), which is linear in
//! `(cos θ, sin θ)` and therefore solvable in closed form — this powers the
//! exact polar lower-envelope computation of `γ_i = min_j γ_ij` (Lemma 2.2).

use crate::angle::{normalize, AngleInterval};
use crate::circle::Circle;
use crate::point::{Point, Vector};

/// One polar branch `γ_ij` around the focus `c_i`.
#[derive(Clone, Copy, Debug)]
pub struct PolarBranch {
    /// Focus `c_i` (center of the disk whose *minimum* distance is tracked).
    pub focus: Point,
    /// `v = c_j − c_i`.
    pub v: Vector,
    /// `a = r_i + r_j ≥ 0`.
    pub a: f64,
    /// `K = ‖v‖² − a² > 0` (cached).
    k: f64,
}

impl PolarBranch {
    /// Branch for ordered pair `(D_i, D_j)`; `None` when `‖v‖ ≤ a`, i.e. the
    /// curve is empty (`γ_ij ≡ +∞`).
    pub fn new(di: &Circle, dj: &Circle) -> Option<Self> {
        let v = dj.center - di.center;
        let a = di.radius + dj.radius;
        let k = v.norm2() - a * a;
        if k <= 0.0 {
            return None;
        }
        Some(PolarBranch {
            focus: di.center,
            v,
            a,
            k,
        })
    }

    /// The open angular domain where the branch is finite.
    pub fn domain(&self) -> AngleInterval {
        let vn = self.v.norm();
        let half = (self.a / vn).clamp(-1.0, 1.0).acos();
        AngleInterval::centered(self.v.angle(), half)
    }

    /// `r(θ)`; `+∞` outside the domain.
    #[inline]
    pub fn eval(&self, theta: f64) -> f64 {
        let u = Vector::from_angle(theta);
        let denom = u.dot(self.v) - self.a;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            self.k / (2.0 * denom)
        }
    }

    /// The point `focus + r(θ)·u(θ)`.
    pub fn point_at(&self, theta: f64) -> Point {
        let r = self.eval(theta);
        self.focus + Vector::from_angle(theta) * r
    }

    /// Polar angle of `p` around the focus.
    #[inline]
    pub fn theta_of(&self, p: Point) -> f64 {
        normalize((p - self.focus).angle())
    }

    /// Angles where this branch equals `other` (same focus!), normalized to
    /// `[0, 2π)` and restricted to both domains. At most two crossings.
    pub fn crossings(&self, other: &PolarBranch) -> Vec<f64> {
        debug_assert!(
            self.focus.dist(other.focus) == 0.0,
            "crossings require a shared focus"
        );
        // K1 (u·v2 − a2) = K2 (u·v1 − a1)
        //   ⇔  u · (K1 v2 − K2 v1) = K1 a2 − K2 a1
        let aa = self.k * other.v.x - other.k * self.v.x;
        let bb = self.k * other.v.y - other.k * self.v.y;
        let cc = self.k * other.a - other.k * self.a;
        let rho = aa.hypot(bb);
        let scale = self.k.abs().max(other.k.abs()).max(1.0);
        if rho <= 1e-14 * scale {
            // Identical or parallel constraints — no transversal crossing.
            return vec![];
        }
        let ratio = cc / rho;
        if ratio.abs() > 1.0 {
            return vec![];
        }
        let phi0 = bb.atan2(aa);
        let dphi = ratio.clamp(-1.0, 1.0).acos();
        let mut out = vec![];
        for theta in [phi0 + dphi, phi0 - dphi] {
            let t = normalize(theta);
            if self.eval(t).is_finite() && other.eval(t).is_finite() {
                // Dedup the tangential case (dphi ≈ 0).
                if !out
                    .iter()
                    .any(|&o: &f64| crate::angle::abs_difference(o, t) < 1e-12)
                {
                    out.push(t);
                }
            }
        }
        out
    }
}

/// The *other* branch: `σ_ij = { x : Δ_i(x) = δ_j(x) }` in polar form around
/// `c_i` — the boundary of the region where `P_i` is **surely** closer than
/// `P_j` (the guaranteed Voronoi diagram of [SE08], which the paper's
/// Section 1.2 builds on). With `v = c_j − c_i`, `a = r_i + r_j`:
///
/// ```text
///   r(θ) = (‖v‖² − a²) / ( 2 (u(θ)·v + a) ) ,  defined where u(θ)·v > −a,
/// ```
///
/// requiring `‖v‖ > a` (otherwise the sure region is empty). Inside the
/// curve (`‖x − c_i‖ < r(θ)`), every location of `P_i` beats every location
/// of `P_j`.
#[derive(Clone, Copy, Debug)]
pub struct SureBranch {
    pub focus: Point,
    pub v: Vector,
    pub a: f64,
    k: f64,
}

impl SureBranch {
    /// Branch for ordered pair `(D_i, D_j)`; `None` when `‖v‖ ≤ a` (the
    /// disks are too close for `P_i` to ever be *surely* closer).
    pub fn new(di: &Circle, dj: &Circle) -> Option<Self> {
        let v = dj.center - di.center;
        let a = di.radius + dj.radius;
        let k = v.norm2() - a * a;
        if k <= 0.0 {
            return None;
        }
        Some(SureBranch {
            focus: di.center,
            v,
            a,
            k,
        })
    }

    /// The open angular domain where the branch is finite: the arc of
    /// half-width `arccos(−a/‖v‖)` (> π/2) centered on the direction of `v`.
    pub fn domain(&self) -> AngleInterval {
        let vn = self.v.norm();
        let half = (-self.a / vn).clamp(-1.0, 1.0).acos();
        AngleInterval::centered(self.v.angle(), half)
    }

    /// `r(θ)`; `+∞` outside the domain (the sure region is unbounded in
    /// directions pointing away from `c_j`... it is not: when `u·v ≤ −a`
    /// the constraint never binds along the ray).
    #[inline]
    pub fn eval(&self, theta: f64) -> f64 {
        let u = Vector::from_angle(theta);
        let denom = u.dot(self.v) + self.a;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            self.k / (2.0 * denom)
        }
    }

    /// The point `focus + r(θ)·u(θ)`.
    pub fn point_at(&self, theta: f64) -> Point {
        let r = self.eval(theta);
        self.focus + Vector::from_angle(theta) * r
    }

    /// Crossings with another sure branch around the same focus — same
    /// closed form as [`PolarBranch::crossings`] with `a → −a`.
    pub fn crossings(&self, other: &SureBranch) -> Vec<f64> {
        debug_assert!(self.focus.dist(other.focus) == 0.0);
        // K1 (u·v2 + a2) = K2 (u·v1 + a1)
        let aa = self.k * other.v.x - other.k * self.v.x;
        let bb = self.k * other.v.y - other.k * self.v.y;
        let cc = other.k * self.a - self.k * other.a;
        let rho = aa.hypot(bb);
        let scale = self.k.abs().max(other.k.abs()).max(1.0);
        if rho <= 1e-14 * scale {
            return vec![];
        }
        let ratio = cc / rho;
        if ratio.abs() > 1.0 {
            return vec![];
        }
        let phi0 = bb.atan2(aa);
        let dphi = ratio.clamp(-1.0, 1.0).acos();
        let mut out = vec![];
        for theta in [phi0 + dphi, phi0 - dphi] {
            let t = normalize(theta);
            if self.eval(t).is_finite()
                && other.eval(t).is_finite()
                && !out
                    .iter()
                    .any(|&o: &f64| crate::angle::abs_difference(o, t) < 1e-12)
            {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    /// Directly checks `δ_i(x) = Δ_j(x)` for points produced by the branch.
    fn check_on_curve(di: &Circle, dj: &Circle, b: &PolarBranch, theta: f64) {
        let p = b.point_at(theta);
        if !p.is_finite() {
            return;
        }
        let delta_i = di.min_dist(p);
        let delta_j_max = dj.max_dist(p);
        assert!(
            (delta_i - delta_j_max).abs() < 1e-8 * (1.0 + delta_j_max),
            "δ_i={delta_i} Δ_j={delta_j_max} at θ={theta}"
        );
    }

    #[test]
    fn branch_points_satisfy_defining_equation() {
        let di = disk(0.0, 0.0, 1.0);
        let dj = disk(10.0, 2.0, 2.0);
        let b = PolarBranch::new(&di, &dj).unwrap();
        let dom = b.domain();
        for k in 1..40 {
            let t = dom.lo + dom.width() * (k as f64) / 40.0;
            if b.eval(t).is_finite() {
                check_on_curve(&di, &dj, &b, t);
            }
        }
    }

    #[test]
    fn empty_when_disks_close() {
        // ‖v‖ = 3 ≤ a = 4: γ_ij ≡ ∞ — D_j never excludes D_i.
        assert!(PolarBranch::new(&disk(0.0, 0.0, 2.0), &disk(3.0, 0.0, 2.0)).is_none());
        // Touching counts as empty too (κ = 0).
        assert!(PolarBranch::new(&disk(0.0, 0.0, 2.0), &disk(4.0, 0.0, 2.0)).is_none());
    }

    #[test]
    fn point_sites_give_perpendicular_bisector() {
        // Zero radii: γ_ij is the classical bisector of the segment.
        let di = disk(0.0, 0.0, 0.0);
        let dj = disk(4.0, 0.0, 0.0);
        let b = PolarBranch::new(&di, &dj).unwrap();
        // Along θ = 0 the bisector is hit at x = 2.
        assert!((b.eval(0.0) - 2.0).abs() < 1e-12);
        // At any angle, the point is equidistant from both sites.
        for k in 0..20 {
            let t = -1.4 + 2.8 * (k as f64) / 20.0;
            let r = b.eval(t);
            if r.is_finite() {
                let p = b.point_at(t);
                assert!((p.dist(di.center) - p.dist(dj.center)).abs() < 1e-8);
            }
        }
        // Domain is the half-circle of directions towards c_j.
        let dom = b.domain();
        assert!((dom.width() - PI).abs() < 1e-12);
    }

    #[test]
    fn domain_boundary_diverges() {
        let di = disk(0.0, 0.0, 1.0);
        let dj = disk(6.0, 0.0, 1.0);
        let b = PolarBranch::new(&di, &dj).unwrap();
        let dom = b.domain();
        let just_inside = dom.lo + 1e-9;
        assert!(b.eval(just_inside) > 1e6);
        let outside = dom.lo - 1e-3;
        assert!(b.eval(outside).is_infinite());
    }

    #[test]
    fn crossings_are_real_crossings() {
        let di = disk(0.0, 0.0, 0.5);
        let dj1 = disk(8.0, 1.0, 1.0);
        let dj2 = disk(2.0, 7.0, 0.25);
        let b1 = PolarBranch::new(&di, &dj1).unwrap();
        let b2 = PolarBranch::new(&di, &dj2).unwrap();
        let xs = b1.crossings(&b2);
        for &t in &xs {
            let r1 = b1.eval(t);
            let r2 = b2.eval(t);
            assert!(
                (r1 - r2).abs() < 1e-7 * (1.0 + r1.abs()),
                "r1={r1} r2={r2} at θ={t}"
            );
        }
        // Crossing set is symmetric.
        let ys = b2.crossings(&b1);
        assert_eq!(xs.len(), ys.len());
    }

    #[test]
    fn crossing_count_never_exceeds_two() {
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
        };
        let di = disk(0.0, 0.0, 0.7);
        for _ in 0..100 {
            let dj1 = disk(next(), next(), next().abs() * 0.3);
            let dj2 = disk(next(), next(), next().abs() * 0.3);
            if let (Some(b1), Some(b2)) = (PolarBranch::new(&di, &dj1), PolarBranch::new(&di, &dj2))
            {
                assert!(b1.crossings(&b2).len() <= 2);
            }
        }
    }

    #[test]
    fn sure_branch_points_satisfy_defining_equation() {
        let di = disk(0.0, 0.0, 0.5);
        let dj = disk(8.0, 1.0, 1.0);
        let b = SureBranch::new(&di, &dj).unwrap();
        let dom = b.domain();
        assert!(dom.width() > PI, "sure domain exceeds a half-circle");
        for k in 1..40 {
            let t = dom.lo + dom.width() * (k as f64) / 40.0;
            let r = b.eval(t);
            if !r.is_finite() || r > 1e9 {
                continue;
            }
            let p = b.point_at(t);
            // Δ_i(p) = δ_j(p).
            let lhs = di.max_dist(p);
            let rhs = dj.min_dist(p);
            assert!(
                (lhs - rhs).abs() < 1e-8 * (1.0 + rhs),
                "Δ_i={lhs} δ_j={rhs} at θ={t}"
            );
            // Strictly inside: P_i surely closer.
            let q = di.center + Vector::from_angle(t) * (r * 0.9);
            assert!(di.max_dist(q) < dj.min_dist(q));
            // Strictly outside: no longer sure.
            let q = di.center + Vector::from_angle(t) * (r * 1.1);
            assert!(di.max_dist(q) > dj.min_dist(q));
        }
    }

    #[test]
    fn sure_branch_empty_when_close() {
        assert!(SureBranch::new(&disk(0.0, 0.0, 2.0), &disk(3.0, 0.0, 2.0)).is_none());
    }

    #[test]
    fn sure_branch_crossings_agree() {
        let di = disk(0.0, 0.0, 0.5);
        let b1 = SureBranch::new(&di, &disk(8.0, 1.0, 1.0)).unwrap();
        let b2 = SureBranch::new(&di, &disk(2.0, 7.0, 0.25)).unwrap();
        for t in b1.crossings(&b2) {
            let r1 = b1.eval(t);
            let r2 = b2.eval(t);
            assert!((r1 - r2).abs() < 1e-7 * (1.0 + r1.abs()), "r1={r1} r2={r2}");
        }
    }

    #[test]
    fn sure_point_sites_give_bisector_too() {
        // Zero radii: both branch families degenerate to the bisector.
        let di = disk(0.0, 0.0, 0.0);
        let dj = disk(4.0, 0.0, 0.0);
        let sure = SureBranch::new(&di, &dj).unwrap();
        let gamma = PolarBranch::new(&di, &dj).unwrap();
        assert!((sure.eval(0.0) - gamma.eval(0.0)).abs() < 1e-12);
        assert!((sure.eval(0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn theta_roundtrip() {
        let di = disk(1.0, 2.0, 0.5);
        let dj = disk(9.0, -1.0, 1.0);
        let b = PolarBranch::new(&di, &dj).unwrap();
        let dom = b.domain();
        for k in 1..10 {
            let t = normalize(dom.lo + dom.width() * (k as f64) / 10.0);
            let p = b.point_at(t);
            if p.is_finite() {
                let t2 = b.theta_of(p);
                assert!(
                    crate::angle::abs_difference(t, t2) < 1e-9,
                    "t={t} vs t2={t2}"
                );
            }
        }
        let _ = TAU;
    }
}
