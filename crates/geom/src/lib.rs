//! `uncertain-geom`: the planar computational-geometry substrate for the
//! `uncertain-nn` workspace (a reproduction of *Nearest-Neighbor Searching
//! Under Uncertainty II*, PODS 2013).
//!
//! Everything here is written from scratch on `f64` coordinates:
//!
//! * [`Point`], [`Vector`], [`Aabb`] — basic affine geometry.
//! * [`predicates`] — the adaptive-precision predicate kernel (Shewchuk's
//!   technique): `orient2d`, `incircle`, line-side, exact distance
//!   comparison, and the slab-method y-order comparisons, each as a fast
//!   f64 filter with a certified error bound and an exact
//!   expansion-arithmetic fallback, plus process-global filter-hit-rate
//!   counters. Used by the Delaunay, arrangement, and point-location
//!   substrates.
//! * [`Circle`] — circles/disks, min/max distance, circle–circle
//!   intersections and lens areas (the analytic distance cdf `G_{q,i}` for
//!   uniform-disk uncertain points).
//! * [`apollonius`] — disks tangent to three given circles with prescribed
//!   inside/outside orientations: every vertex of the nonzero Voronoi diagram
//!   `V≠0` is the center of such a witness disk.
//! * [`hyperbola`] — the bisector-like curves `γ_ij = {x : δ_i(x) = Δ_j(x)}`
//!   in polar form around a focus, with closed-form pairwise crossings.
//! * [`sec`] — Welzl's smallest enclosing circle.
//! * [`hull`] — convex hulls and logarithmic farthest-point queries.
//! * [`halfplane`] — halfplane intersection (the convex polygons `K_ij` of
//!   the discrete diagram).
//! * [`polygon`] — convex-polygon utilities and clipping.
//! * [`angle`] — circular-arithmetic helpers for polar envelopes.

pub mod angle;
pub mod apollonius;
pub mod circle;
pub mod halfplane;
pub mod hull;
pub mod hyperbola;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod sec;

pub use circle::Circle;
pub use point::{Aabb, Point, Vector};

/// Default relative tolerance used by geometric routines that compare
/// algebraically-derived quantities (tangency residuals, envelope
/// breakpoints). Absolute tolerances are derived by multiplying with the
/// magnitude of the data involved.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are equal up to [`EPS`] relative to the
/// larger magnitude (with an absolute floor of `EPS` for values near zero).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPS * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq(0.0, 1e-12));
        assert!(approx_eq(1e12, 1e12 + 1.0));
    }
}
