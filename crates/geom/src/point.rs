//! Points, vectors, and axis-aligned bounding boxes in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the plane with `f64` coordinates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement vector in the plane.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vector {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        (*self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: Point) -> f64 {
        (*self - other).norm2()
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        *self + (other - *self) * t
    }

    /// Position vector from the origin.
    #[inline]
    pub fn to_vector(&self) -> Vector {
        Vector::new(self.x, self.y)
    }

    /// `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector {
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Unit vector in direction `theta` (radians).
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vector::new(theta.cos(), theta.sin())
    }

    /// Euclidean norm.
    ///
    /// Computed as `(x² + y²).sqrt()` — NOT `hypot`. The plain form is the
    /// one the SoA distance kernels (`uncertain_spatial::soa`) evaluate in
    /// chunked lanes, and every distance in the workspace must come out of
    /// the *same* float expression so scalar and vectorized paths (and all
    /// query families that share locations) stay bitwise identical. `hypot`
    /// guards against overflow at |x| ≳ 1e154, far beyond any coordinate
    /// this engine serves, and costs a non-vectorizable libm call per
    /// distance.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (`z` component of the 3-D cross product).
    #[inline]
    pub fn cross(&self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Counter-clockwise perpendicular vector.
    #[inline]
    pub fn perp(&self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Angle of this vector in `(-π, π]` (via `atan2`).
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// The vector scaled to unit length; returns `None` for (near-)zero
    /// vectors.
    pub fn normalized(&self) -> Option<Vector> {
        let n = self.norm();
        if n <= f64::MIN_POSITIVE {
            None
        } else {
            Some(*self / n)
        }
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vector) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, v: Vector) {
        self.x -= v.x;
        self.y -= v.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, s: f64) -> Vector {
        Vector::new(self.x * s, self.y * s)
    }
}

impl Mul<Vector> for f64 {
    type Output = Vector;
    #[inline]
    fn mul(self, v: Vector) -> Vector {
        v * self
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, s: f64) -> Vector {
        Vector::new(self.x / s, self.y / s)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned bounding box. An *empty* box has `lo > hi` component-wise
/// and is produced by [`Aabb::empty`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub lo: Point,
    pub hi: Point,
}

impl Aabb {
    /// The empty box (identity for [`Aabb::union`]).
    pub fn empty() -> Self {
        Aabb {
            lo: Point::new(f64::INFINITY, f64::INFINITY),
            hi: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Box spanning the two corner points (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Aabb {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest box containing all `points`.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut b = Aabb::empty();
        for p in points {
            b.extend(p);
        }
        b
    }

    /// `true` when no point has been added.
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Grows the box to contain `p`.
    pub fn extend(&mut self, p: Point) {
        self.lo.x = self.lo.x.min(p.x);
        self.lo.y = self.lo.y.min(p.y);
        self.hi.x = self.hi.x.max(p.x);
        self.hi.y = self.hi.y.max(p.y);
    }

    /// The smallest box containing both boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// The box inflated by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb {
            lo: Point::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point::new(self.hi.x + margin, self.hi.y + margin),
        }
    }

    /// `true` iff `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Euclidean distance from `p` to the box (0 when inside).
    ///
    /// Uses the same `(dx² + dy²).sqrt()` expression as [`Vector::norm`] so
    /// that the bound stays consistent with item distances at exact boundary
    /// radii (the kd-tree prunes on `bbox_dist <= r` while leaves test
    /// `point_dist <= r`, and `r` is itself a computed distance).
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Largest distance from `p` to any point of the box.
    ///
    /// Same `(dx² + dy²).sqrt()` expression as [`Vector::norm`]; see
    /// [`Aabb::dist_to_point`].
    #[inline]
    pub fn max_dist_to_point(&self, p: Point) -> f64 {
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Center of the box.
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Half the diagonal length; a convenient "scale" of the box.
    pub fn radius(&self) -> f64 {
        0.5 * self.width().hypot(self.height())
    }

    /// The four corners in counter-clockwise order starting at `lo`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.hi.x, self.lo.y),
            self.hi,
            Point::new(self.lo.x, self.hi.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        let v = q - p;
        assert_eq!(v, Vector::new(3.0, 4.0));
        assert_eq!(v.norm(), 5.0);
        assert_eq!(p + v, q);
        assert_eq!(p.dist(q), 5.0);
        assert_eq!(p.dist2(q), 25.0);
        assert_eq!(p.midpoint(q), Point::new(2.5, 4.0));
        assert_eq!(p.lerp(q, 0.0), p);
        assert_eq!(p.lerp(q, 1.0), q);
    }

    #[test]
    fn vector_products() {
        let a = Vector::new(1.0, 0.0);
        let b = Vector::new(0.0, 2.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 2.0);
        assert_eq!(a.perp(), Vector::new(0.0, 1.0));
        assert!((Vector::from_angle(std::f64::consts::FRAC_PI_2).y - 1.0).abs() < 1e-15);
        assert_eq!(b.normalized(), Some(Vector::new(0.0, 1.0)));
        assert_eq!(Vector::new(0.0, 0.0).normalized(), None);
    }

    #[test]
    fn aabb_basics() {
        let b = Aabb::from_points([Point::new(0.0, 1.0), Point::new(2.0, -1.0)]);
        assert!(!b.is_empty());
        assert!(b.contains(Point::new(1.0, 0.0)));
        assert!(!b.contains(Point::new(3.0, 0.0)));
        assert_eq!(b.dist_to_point(Point::new(1.0, 0.0)), 0.0);
        assert_eq!(b.dist_to_point(Point::new(4.0, 1.0)), 2.0);
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.center(), Point::new(1.0, 0.0));
        let far = b.max_dist_to_point(Point::new(0.0, 1.0));
        assert!((far - (2.0f64.powi(2) + 2.0f64.powi(2)).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aabb_empty_union() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        let b = Aabb::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(e.union(&b), b);
        let infl = b.inflated(1.0);
        assert_eq!(infl.lo, Point::new(-1.0, -1.0));
        assert_eq!(infl.hi, Point::new(2.0, 2.0));
    }
}
