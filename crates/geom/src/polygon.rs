//! Polygon utilities (mostly for convex polygons produced by halfplane
//! intersection and Voronoi-cell clipping).

use crate::point::{Aabb, Point};
use crate::predicates::orient2d;

/// Signed area of a simple polygon (positive when counter-clockwise).
pub fn signed_area(poly: &[Point]) -> f64 {
    if poly.len() < 3 {
        return 0.0;
    }
    let mut s = 0.0;
    for i in 0..poly.len() {
        let a = poly[i];
        let b = poly[(i + 1) % poly.len()];
        s += a.x * b.y - b.x * a.y;
    }
    0.5 * s
}

/// Centroid of a simple polygon with nonzero area.
pub fn centroid(poly: &[Point]) -> Option<Point> {
    let a = signed_area(poly);
    if a.abs() < f64::MIN_POSITIVE {
        return None;
    }
    let (mut cx, mut cy) = (0.0, 0.0);
    for i in 0..poly.len() {
        let p = poly[i];
        let q = poly[(i + 1) % poly.len()];
        let w = p.x * q.y - q.x * p.y;
        cx += (p.x + q.x) * w;
        cy += (p.y + q.y) * w;
    }
    Some(Point::new(cx / (6.0 * a), cy / (6.0 * a)))
}

/// `true` iff `q` lies in the closed convex polygon `poly` (counter-clockwise
/// vertex order). Exact on boundaries thanks to robust orientation.
pub fn convex_contains(poly: &[Point], q: Point) -> bool {
    if poly.len() < 3 {
        return false;
    }
    for i in 0..poly.len() {
        let a = poly[i];
        let b = poly[(i + 1) % poly.len()];
        if orient2d(a, b, q) < 0.0 {
            return false;
        }
    }
    true
}

/// Clips a convex polygon by the halfplane `{x : n·(x − p0) ≤ 0}` described
/// by a point `p0` on its boundary line and the outward normal `n`
/// (Sutherland–Hodgman step). The polygon must be convex; the result is
/// convex (possibly empty).
pub fn clip_convex_by_halfplane(poly: &[Point], p0: Point, n: crate::point::Vector) -> Vec<Point> {
    let side = |p: Point| (p - p0).dot(n); // ≤ 0 is inside
    let mut out = Vec::with_capacity(poly.len() + 2);
    for i in 0..poly.len() {
        let cur = poly[i];
        let nxt = poly[(i + 1) % poly.len()];
        let sc = side(cur);
        let sn = side(nxt);
        if sc <= 0.0 {
            out.push(cur);
        }
        if (sc < 0.0 && sn > 0.0) || (sc > 0.0 && sn < 0.0) {
            let t = sc / (sc - sn);
            out.push(cur.lerp(nxt, t));
        }
    }
    out
}

/// Axis-aligned box as a counter-clockwise polygon.
pub fn box_polygon(b: &Aabb) -> Vec<Point> {
    b.corners().to_vec()
}

/// Removes consecutive (near-)duplicate vertices; also merges the closing
/// vertex with the first. `tol` is an absolute distance.
pub fn dedup_vertices(poly: &mut Vec<Point>, tol: f64) {
    if poly.is_empty() {
        return;
    }
    let mut out: Vec<Point> = Vec::with_capacity(poly.len());
    for &p in poly.iter() {
        if out.last().is_none_or(|l| l.dist(p) > tol) {
            out.push(p);
        }
    }
    while out.len() > 1 && out[0].dist(*out.last().unwrap()) <= tol {
        out.pop();
    }
    *poly = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Vector;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn unit_square() -> Vec<Point> {
        vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]
    }

    #[test]
    fn area_and_centroid() {
        let sq = unit_square();
        assert!((signed_area(&sq) - 1.0).abs() < 1e-15);
        assert_eq!(centroid(&sq), Some(p(0.5, 0.5)));
        let cw: Vec<Point> = sq.iter().rev().copied().collect();
        assert!((signed_area(&cw) + 1.0).abs() < 1e-15);
        assert!(centroid(&[p(0.0, 0.0), p(1.0, 1.0)]).is_none());
    }

    #[test]
    fn contains() {
        let sq = unit_square();
        assert!(convex_contains(&sq, p(0.5, 0.5)));
        assert!(convex_contains(&sq, p(0.0, 0.0))); // boundary
        assert!(convex_contains(&sq, p(0.5, 0.0))); // edge
        assert!(!convex_contains(&sq, p(1.5, 0.5)));
        assert!(!convex_contains(&[p(0.0, 0.0), p(1.0, 0.0)], p(0.5, 0.0)));
    }

    #[test]
    fn clipping() {
        let sq = unit_square();
        // Clip by x ≤ 0.5.
        let clipped = clip_convex_by_halfplane(&sq, p(0.5, 0.0), Vector::new(1.0, 0.0));
        assert!((signed_area(&clipped) - 0.5).abs() < 1e-12);
        // Clip away everything.
        let empty = clip_convex_by_halfplane(&sq, p(-1.0, 0.0), Vector::new(1.0, 0.0));
        assert!(signed_area(&empty).abs() < 1e-12);
        // Clip with polygon fully inside.
        let all = clip_convex_by_halfplane(&sq, p(5.0, 0.0), Vector::new(1.0, 0.0));
        assert!((signed_area(&all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dedup() {
        let mut poly = vec![
            p(0.0, 0.0),
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1e-12),
        ];
        dedup_vertices(&mut poly, 1e-9);
        assert_eq!(poly.len(), 3);
    }
}
