//! Adaptive-precision geometric predicates.
//!
//! Every predicate here is evaluated with a fast floating-point filter first
//! (with a forward error bound following Shewchuk, *Adaptive Precision
//! Floating-Point Arithmetic and Fast Robust Geometric Predicates*, 1997).
//! When the filter cannot certify the sign, the quantity is recomputed
//! *exactly* using multi-term floating-point expansions, so the returned sign
//! is always correct. This is what makes the Delaunay triangulation, the
//! arrangement substrates, and the slab point-location structures immune to
//! near-degenerate inputs such as the paper's lower-bound constructions
//! (which place many points cocircularly on purpose) and to queries placed
//! exactly on cell boundaries.
//!
//! # Predicate inventory and filter error bounds
//!
//! Each filter certifies the f64 sign when `|det| > C · ε · permanent`,
//! where `ε = 2⁻⁵³`, `permanent` is the sum of absolute values of the terms
//! of the determinant, and `C` bounds the number of accumulated roundings
//! (each f64 operation contributes at most one ulp of its result; the
//! constants below are deliberately a little conservative — a too-large `C`
//! only costs a rare unnecessary exact fallback, never correctness):
//!
//! | predicate            | sign of …                               | `C`  |
//! |----------------------|-----------------------------------------|------|
//! | [`orient2d`]         | `(a−c) × (b−c)`                         | 3    |
//! | [`incircle`]         | lifted 4×4 in-circle determinant        | 10   |
//! | [`line_point_sign`]  | `a·pₓ + b·p_y − c`                      | 4    |
//! | [`cmp_dist`]         | `‖a−q‖² − ‖b−q‖²`                       | 10   |
//! | [`cmp_lines_y_at`]   | `y₁(x) − y₂(x)` of two lines            | 12   |
//! | [`cmp_segments_y_at`]| `y₁(x) − y₂(x)` of two segments         | 24   |
//!
//! The exact fallbacks run on zero-eliminated floating-point expansions
//! ([`expansion_sum`], [`expansion_scale`], [`expansion_product`]); input
//! coordinate differences that f64 would round are first captured exactly
//! with two-term `two_diff` expansions, so the fallback sign is the sign of
//! the underlying real-arithmetic quantity of the *given* f64 inputs.
//!
//! # Filter statistics
//!
//! Process-global relaxed counters record how often the filter certified the
//! sign ([`PredicateStats::filter_hits`]) versus fell back to exact
//! arithmetic ([`PredicateStats::exact_fallbacks`]). The counters live in
//! the `uncertain_obs` registry (names `geom.predicate.filter_hits` /
//! `geom.predicate.exact_fallbacks`), so they appear in every
//! `MetricsSnapshot` alongside the engine's spans. Snapshot with
//! [`predicate_stats`] and diff with [`PredicateStats::since`]; benches and
//! `ExecStats` use this to show the fast path dominates (≥ 99% on random
//! inputs — the fallback only triggers within an ulp-scale shell of a
//! degeneracy).

use crate::point::Point;

/// Half an ulp of 1.0: the machine epsilon in Shewchuk's convention (2⁻⁵³).
const EPSILON: f64 = 1.110_223_024_625_156_5e-16;
/// 2²⁷ + 1, used to split a double into two 26-bit halves.
const SPLITTER: f64 = 134_217_729.0;

const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
const ICC_ERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;
const LINE_ERRBOUND: f64 = (4.0 + 32.0 * EPSILON) * EPSILON;
const DIST_ERRBOUND: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;
const LINE_Y_ERRBOUND: f64 = (12.0 + 96.0 * EPSILON) * EPSILON;
const SEG_Y_ERRBOUND: f64 = (24.0 + 192.0 * EPSILON) * EPSILON;

// ---------------------------------------------------------------------------
// Filter statistics
// ---------------------------------------------------------------------------

/// Registry handle for the filter-hit counter (resolved once).
#[inline]
fn filter_hits_counter() -> &'static uncertain_obs::Counter {
    uncertain_obs::counter!("geom.predicate.filter_hits")
}

/// Registry handle for the exact-fallback counter (resolved once).
#[inline]
fn exact_fallbacks_counter() -> &'static uncertain_obs::Counter {
    uncertain_obs::counter!("geom.predicate.exact_fallbacks")
}

/// Cumulative counts of filter outcomes across every adaptive predicate in
/// the process. Counters are monotone; diff two snapshots with
/// [`PredicateStats::since`] to measure one workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredicateStats {
    /// Calls whose f64 filter certified the sign (fast path).
    pub filter_hits: u64,
    /// Calls that fell back to exact expansion arithmetic.
    pub exact_fallbacks: u64,
}

impl PredicateStats {
    /// Total adaptive predicate calls.
    pub fn total(&self) -> u64 {
        self.filter_hits + self.exact_fallbacks
    }

    /// Fraction of calls the fast path answered; `0.0` when no calls ran
    /// (an empty window reports no hits, not a perfect rate).
    pub fn filter_hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.filter_hits as f64 / self.total() as f64
        }
    }

    /// Counts accumulated since the `earlier` snapshot (saturating, so a
    /// stale snapshot can never underflow).
    pub fn since(&self, earlier: &PredicateStats) -> PredicateStats {
        PredicateStats {
            filter_hits: self.filter_hits.saturating_sub(earlier.filter_hits),
            exact_fallbacks: self.exact_fallbacks.saturating_sub(earlier.exact_fallbacks),
        }
    }
}

/// Snapshot of the process-global filter counters. Concurrent predicate
/// calls from other threads are included — diff snapshots around a
/// single-threaded region (or accept the aggregate) accordingly.
pub fn predicate_stats() -> PredicateStats {
    PredicateStats {
        filter_hits: filter_hits_counter().get(),
        exact_fallbacks: exact_fallbacks_counter().get(),
    }
}

/// Resets the global counters to zero (single-threaded harnesses only —
/// concurrent snapshots taken across a reset are meaningless).
pub fn reset_predicate_stats() {
    filter_hits_counter().reset();
    exact_fallbacks_counter().reset();
}

#[inline]
fn count_hit() {
    filter_hits_counter().inc();
}

#[inline]
fn count_exact() {
    exact_fallbacks_counter().inc();
}

// ---------------------------------------------------------------------------
// Exact floating-point primitives
// ---------------------------------------------------------------------------

/// Exact sum assuming `|a| >= |b|`: returns `(x, y)` with `a + b = x + y`
/// exactly and `x = fl(a + b)`.
#[inline]
fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    (x, b - bv)
}

/// Exact sum of two doubles: `a + b = x + y` with `x = fl(a + b)`.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    let av = x - bv;
    let br = b - bv;
    let ar = a - av;
    (x, ar + br)
}

/// Exact difference of two doubles: `a - b = x + y` with `x = fl(a - b)`.
#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bv = a - x;
    let av = x + bv;
    let br = bv - b;
    let ar = a - av;
    (x, ar + br)
}

/// Splits `a` into two non-overlapping halves `(hi, lo)` with `a = hi + lo`.
#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let hi = c - abig;
    (hi, a - hi)
}

/// Exact product: `a * b = x + y` with `x = fl(a * b)`.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

// ---------------------------------------------------------------------------
// Expansion arithmetic (components sorted by increasing magnitude,
// zero-eliminated)
// ---------------------------------------------------------------------------

/// Sum of two expansions (Shewchuk's `FAST_EXPANSION_SUM_ZEROELIM`).
pub fn expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    if e.is_empty() {
        return f.iter().copied().filter(|&x| x != 0.0).collect();
    }
    if f.is_empty() {
        return e.iter().copied().filter(|&x| x != 0.0).collect();
    }
    let mut h = Vec::with_capacity(e.len() + f.len());
    let (mut i, mut j) = (0usize, 0usize);
    // Start with the smaller-magnitude head.
    let mut q = if (f[0] > e[0]) == (f[0] > -e[0]) {
        i = 1;
        e[0]
    } else {
        j = 1;
        f[0]
    };
    if i < e.len() && j < f.len() {
        let (qnew, hh) = if (f[j] > e[i]) == (f[j] > -e[i]) {
            let r = fast_two_sum(e[i], q);
            i += 1;
            r
        } else {
            let r = fast_two_sum(f[j], q);
            j += 1;
            r
        };
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
        while i < e.len() && j < f.len() {
            let (qnew, hh) = if (f[j] > e[i]) == (f[j] > -e[i]) {
                let r = two_sum(q, e[i]);
                i += 1;
                r
            } else {
                let r = two_sum(q, f[j]);
                j += 1;
                r
            };
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
        }
    }
    while i < e.len() {
        let (qnew, hh) = two_sum(q, e[i]);
        i += 1;
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
    }
    while j < f.len() {
        let (qnew, hh) = two_sum(q, f[j]);
        j += 1;
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Product of an expansion by a double (`SCALE_EXPANSION_ZEROELIM`).
pub fn expansion_scale(e: &[f64], b: f64) -> Vec<f64> {
    if e.is_empty() || b == 0.0 {
        return vec![];
    }
    let mut h = Vec::with_capacity(2 * e.len());
    let (mut q, hh) = two_product(e[0], b);
    if hh != 0.0 {
        h.push(hh);
    }
    for &ei in &e[1..] {
        let (p1, p0) = two_product(ei, b);
        let (sum, hh) = two_sum(q, p0);
        if hh != 0.0 {
            h.push(hh);
        }
        let (qnew, hh) = fast_two_sum(p1, sum);
        if hh != 0.0 {
            h.push(hh);
        }
        q = qnew;
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Exact product of two expansions (distributes `expansion_scale` over `f`).
pub fn expansion_product(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut acc: Vec<f64> = vec![];
    for &fi in f {
        let partial = expansion_scale(e, fi);
        acc = expansion_sum(&acc, &partial);
    }
    acc
}

/// Negates an expansion in place.
pub fn expansion_negate(e: &mut [f64]) {
    for x in e {
        *x = -*x;
    }
}

/// The sign of the exact value represented by the expansion: the sign of the
/// largest-magnitude (last nonzero) component.
pub fn expansion_sign(e: &[f64]) -> f64 {
    for &x in e.iter().rev() {
        if x != 0.0 {
            return if x > 0.0 { 1.0 } else { -1.0 };
        }
    }
    0.0
}

/// Rounded value of the expansion (sum of components, largest last so the
/// result is faithfully rounded).
pub fn expansion_estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

// ---------------------------------------------------------------------------
// orient2d
// ---------------------------------------------------------------------------

/// Exact sign of the signed area of triangle `(a, b, c)`.
///
/// Returns a value whose **sign** is exact: positive when `a, b, c` make a
/// left (counter-clockwise) turn, negative for a right turn, and zero when
/// collinear.
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            count_hit();
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            count_hit();
            return det;
        }
        -detleft - detright
    } else {
        count_hit();
        return det;
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        count_hit();
        return det;
    }
    count_exact();
    orient2d_exact(a, b, c)
}

/// Non-robust single-precision-path orientation (useful when the caller only
/// needs an approximate value, e.g. for sorting nearly-ordered data).
#[inline]
pub fn orient2d_fast(a: Point, b: Point, c: Point) -> f64 {
    (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x)
}

/// Fully exact orientation determinant computed with expansions:
/// `ax·by − ax·cy − cx·by − ay·bx + ay·cx + cy·bx`.
fn orient2d_exact(a: Point, b: Point, c: Point) -> f64 {
    let terms = [
        two_product(a.x, b.y),
        two_product(-a.x, c.y),
        two_product(-c.x, b.y),
        two_product(-a.y, b.x),
        two_product(a.y, c.x),
        two_product(c.y, b.x),
    ];
    let mut acc: Vec<f64> = vec![];
    for (hi, lo) in terms {
        acc = expansion_sum(&acc, &[lo, hi]);
    }
    let s = expansion_sign(&acc);
    if s == 0.0 {
        0.0
    } else {
        // Return a value with the exact sign and a magnitude close to the
        // exact one, so callers can still use it quantitatively.
        let est = expansion_estimate(&acc);
        if est != 0.0 {
            est
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

// ---------------------------------------------------------------------------
// incircle
// ---------------------------------------------------------------------------

/// Exact-sign in-circle test.
///
/// With `a, b, c` in counter-clockwise order, the result is positive iff `d`
/// lies strictly inside the circle through `a, b, c`, negative iff strictly
/// outside, zero iff cocircular. (If `a, b, c` are clockwise the sign is
/// reversed.)
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        count_hit();
        return det;
    }
    count_exact();
    incircle_exact(a, b, c, d)
}

/// Orientation 3×3 minor `det[[px,py,1],[qx,qy,1],[rx,ry,1]]` as an exact
/// expansion (the cofactors of the lifted 4×4 in-circle determinant).
fn orient_expansion(p: Point, q: Point, r: Point) -> Vec<f64> {
    // p.x*q.y - p.y*q.x - p.x*r.y + p.y*r.x + q.x*r.y - q.y*r.x
    let terms = [
        two_product(p.x, q.y),
        two_product(-p.y, q.x),
        two_product(-p.x, r.y),
        two_product(p.y, r.x),
        two_product(q.x, r.y),
        two_product(-q.y, r.x),
    ];
    let mut acc: Vec<f64> = vec![];
    for (hi, lo) in terms {
        acc = expansion_sum(&acc, &[lo, hi]);
    }
    acc
}

/// The lifted coordinate `px² + py²` as an exact expansion.
fn lift_expansion(p: Point) -> Vec<f64> {
    let (x1, x0) = two_product(p.x, p.x);
    let (y1, y0) = two_product(p.y, p.y);
    expansion_sum(&[x0, x1], &[y0, y1])
}

/// Exact in-circle determinant via cofactor expansion of
/// `det[[x, y, x²+y², 1]]` over rows `a, b, c, d`.
fn incircle_exact(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let la = lift_expansion(a);
    let lb = lift_expansion(b);
    let lc = lift_expansion(c);
    let ld = lift_expansion(d);

    let oa = orient_expansion(b, c, d);
    let mut ob = orient_expansion(a, c, d);
    let oc = orient_expansion(a, b, d);
    let mut od = orient_expansion(a, b, c);
    expansion_negate(&mut ob);
    expansion_negate(&mut od);

    let mut det = expansion_product(&la, &oa);
    det = expansion_sum(&det, &expansion_product(&lb, &ob));
    det = expansion_sum(&det, &expansion_product(&lc, &oc));
    det = expansion_sum(&det, &expansion_product(&ld, &od));

    let s = expansion_sign(&det);
    if s == 0.0 {
        0.0
    } else {
        let est = expansion_estimate(&det);
        if est != 0.0 {
            est
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

// ---------------------------------------------------------------------------
// Segment side
// ---------------------------------------------------------------------------

/// Which side of the directed segment `a → b` a point lies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Strictly left of `a → b` (counter-clockwise turn).
    Left,
    /// Exactly on the supporting line.
    On,
    /// Strictly right of `a → b` (clockwise turn).
    Right,
}

/// Exact side of `p` relative to the directed segment `a → b`.
#[inline]
pub fn side_of_segment(a: Point, b: Point, p: Point) -> Side {
    let o = orient2d(a, b, p);
    if o > 0.0 {
        Side::Left
    } else if o < 0.0 {
        Side::Right
    } else {
        Side::On
    }
}

// ---------------------------------------------------------------------------
// Robust intersection quotients
// ---------------------------------------------------------------------------
//
// Intersection *coordinates* are quotients of determinants. Evaluating the
// determinants naively in f64 and dividing is catastrophically inaccurate
// for near-parallel inputs (the denominator cancels, so its relative error
// — and hence the quotient's absolute error — is unbounded). The helpers
// below evaluate numerator and denominator as exact expansions first and
// divide their faithfully-rounded estimates, so the result is within a few
// ulps of the true real-arithmetic value for *any* conditioning. This is
// what keeps constructed arrangement vertices within the snap tolerance of
// the true geometry — the premise of every guard-band certificate built on
// top.

/// The parameter `t ∈ [0, 1]` of the crossing of segment `a1 → b1` with the
/// line through `a2 → b2`: `t = o1 / (o1 − o2)` with both orientations
/// evaluated as exact expansions, so the quotient has only a few ulps of
/// relative error even when the segments are nearly parallel. Callers must
/// have established that a proper crossing exists (`o1`, `o2` of strictly
/// opposite signs).
pub fn crossing_param(a1: Point, b1: Point, a2: Point, b2: Point) -> f64 {
    let o1 = orient_expansion(a2, b2, a1);
    let mut o2 = orient_expansion(a2, b2, b1);
    expansion_negate(&mut o2);
    let den = expansion_estimate(&expansion_sum(&o1, &o2));
    if den == 0.0 {
        return 0.5; // exactly parallel: contract violated; stay in range
    }
    (expansion_estimate(&o1) / den).clamp(0.0, 1.0)
}

/// Intersection point of the lines `a₁·x + b₁·y = c₁` and
/// `a₂·x + b₂·y = c₂`, or `None` when their determinant `a₁b₂ − a₂b₁` is
/// *exactly* zero. Each coordinate is the quotient of faithfully-rounded
/// exact expansion estimates — within a few ulps of the true intersection
/// for any conditioning (near-parallel lines give a far-away but accurately
/// placed point, not garbage).
pub fn line_intersection(l1: (f64, f64, f64), l2: (f64, f64, f64)) -> Option<(f64, f64)> {
    let (a1, b1, c1) = l1;
    let (a2, b2, c2) = l2;
    let det2 = |p: f64, q: f64, r: f64, s: f64| -> Vec<f64> {
        // p·s − q·r as an exact expansion.
        let (x1, y1) = two_product(p, s);
        let (x2, y2) = two_product(q, r);
        expansion_sum(&[y1, x1], &[-y2, -x2])
    };
    let den_e = det2(a1, a2, b1, b2); // a1·b2 − a2·b1
    if expansion_sign(&den_e) == 0.0 {
        return None;
    }
    let den = expansion_estimate(&den_e);
    let x = expansion_estimate(&det2(c1, c2, b1, b2)) / den; // (c1·b2 − c2·b1)/den
    let y = expansion_estimate(&det2(a1, a2, c1, c2)) / den; // (a1·c2 − a2·c1)/den
    Some((x, y))
}

// ---------------------------------------------------------------------------
// Line-side sign
// ---------------------------------------------------------------------------

/// Exact sign of `a·pₓ + b·p_y − c` — which side of the line `a·x + b·y = c`
/// the point `p` lies on. Returns a value whose **sign** is exact (zero iff
/// `p` is exactly on the line).
pub fn line_point_sign(a: f64, b: f64, c: f64, p: Point) -> f64 {
    let t1 = a * p.x;
    let t2 = b * p.y;
    let det = (t1 + t2) - c;
    let permanent = t1.abs() + t2.abs() + c.abs();
    let errbound = LINE_ERRBOUND * permanent;
    if det > errbound || -det > errbound {
        count_hit();
        return det;
    }
    count_exact();
    let (x1, y1) = two_product(a, p.x);
    let (x2, y2) = two_product(b, p.y);
    let e = expansion_sum(&[y1, x1], &[y2, x2]);
    let e = expansion_sum(&e, &[-c]);
    expansion_sign(&e)
}

// ---------------------------------------------------------------------------
// Distance comparison
// ---------------------------------------------------------------------------

/// `‖p − q‖²` as an exact expansion (differences captured with `two_diff`).
fn dist2_expansion(q: Point, p: Point) -> Vec<f64> {
    let (dx, dxe) = two_diff(p.x, q.x);
    let (dy, dye) = two_diff(p.y, q.y);
    let ex = [dxe, dx];
    let ey = [dye, dy];
    expansion_sum(&expansion_product(&ex, &ex), &expansion_product(&ey, &ey))
}

/// Exact comparison of `‖a − q‖` vs `‖b − q‖` (squared distances — same
/// order, no square roots). `Equal` means *exactly* equidistant, so ties on
/// Voronoi edges and cocircular configurations are detected reliably.
pub fn cmp_dist(q: Point, a: Point, b: Point) -> std::cmp::Ordering {
    let ux = a.x - q.x;
    let uy = a.y - q.y;
    let vx = b.x - q.x;
    let vy = b.y - q.y;
    let da = ux * ux + uy * uy;
    let db = vx * vx + vy * vy;
    let det = da - db;
    let errbound = DIST_ERRBOUND * (da + db);
    if det > errbound {
        count_hit();
        return std::cmp::Ordering::Greater;
    }
    if -det > errbound {
        count_hit();
        return std::cmp::Ordering::Less;
    }
    count_exact();
    let ea = dist2_expansion(q, a);
    let mut eb = dist2_expansion(q, b);
    expansion_negate(&mut eb);
    let s = expansion_sign(&expansion_sum(&ea, &eb));
    if s > 0.0 {
        std::cmp::Ordering::Greater
    } else if s < 0.0 {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Equal
    }
}

// ---------------------------------------------------------------------------
// Vertical-order comparisons (the slab-method predicates)
// ---------------------------------------------------------------------------

/// Exact comparison of the heights of two non-vertical lines
/// `aᵢ·x + bᵢ·y = cᵢ` (given as `(a, b, c)` with `b ≠ 0`) at abscissa `x`:
/// the sign of `y₁(x) − y₂(x)`. This is the x-order predicate of the slab
/// method — it stays correct arbitrarily close to (and exactly at) line
/// crossings.
pub fn cmp_lines_y_at(l1: (f64, f64, f64), l2: (f64, f64, f64), x: f64) -> std::cmp::Ordering {
    let (a1, b1, c1) = l1;
    let (a2, b2, c2) = l2;
    debug_assert!(b1 != 0.0 && b2 != 0.0, "lines must be non-vertical");
    // y₁(x) − y₂(x) = [(c₁ − a₁x)·b₂ − (c₂ − a₂x)·b₁] / (b₁·b₂).
    let n1 = c1 - a1 * x;
    let n2 = c2 - a2 * x;
    let det = n1 * b2 - n2 * b1;
    let permanent = (c1.abs() + (a1 * x).abs()) * b2.abs() + (c2.abs() + (a2 * x).abs()) * b1.abs();
    let flip = (b1 > 0.0) != (b2 > 0.0);
    let errbound = LINE_Y_ERRBOUND * permanent;
    if det > errbound || -det > errbound {
        count_hit();
        return signed_ordering(if flip { -det } else { det });
    }
    count_exact();
    // Exact: c₁·b₂ − x·a₁·b₂ − c₂·b₁ + x·a₂·b₁ as one expansion.
    let (p1, e1) = two_product(c1, b2);
    let (p2, e2) = two_product(c2, b1);
    let (q1, f1) = two_product(a1, b2);
    let (q2, f2) = two_product(a2, b1);
    let mut acc = expansion_sum(&[e1, p1], &[-e2, -p2]);
    acc = expansion_sum(&acc, &expansion_scale(&[f1, q1], -x));
    acc = expansion_sum(&acc, &expansion_scale(&[f2, q2], x));
    let s = expansion_sign(&acc);
    signed_ordering(if flip { -s } else { s })
}

/// Exact comparison of the heights of two non-vertical segments at abscissa
/// `x`. Each segment is `(l, r)` with `l.x < r.x`; the segments are treated
/// as their supporting lines (callers guarantee `x` lies in both spans).
pub fn cmp_segments_y_at(e1: (Point, Point), e2: (Point, Point), x: f64) -> std::cmp::Ordering {
    let (l1, r1) = e1;
    let (l2, r2) = e2;
    debug_assert!(l1.x < r1.x && l2.x < r2.x, "segments must be rightward");
    // y(x) = [l.y·(r.x − l.x) + (x − l.x)·(r.y − l.y)] / (r.x − l.x) with a
    // positive denominator, so compare N₁·D₂ against N₂·D₁.
    let d1 = r1.x - l1.x;
    let d2 = r2.x - l2.x;
    let n1 = l1.y * d1 + (x - l1.x) * (r1.y - l1.y);
    let n2 = l2.y * d2 + (x - l2.x) * (r2.y - l2.y);
    let det = n1 * d2 - n2 * d1;
    let pn1 = (l1.y * d1).abs() + ((x - l1.x) * (r1.y - l1.y)).abs();
    let pn2 = (l2.y * d2).abs() + ((x - l2.x) * (r2.y - l2.y)).abs();
    let permanent = pn1 * d2 + pn2 * d1;
    let errbound = SEG_Y_ERRBOUND * permanent;
    if det > errbound || -det > errbound {
        count_hit();
        return signed_ordering(det);
    }
    count_exact();
    let nd1 = segment_y_numden(l1, r1, x);
    let nd2 = segment_y_numden(l2, r2, x);
    let cross1 = expansion_product(&nd1.0, &nd2.1);
    let mut cross2 = expansion_product(&nd2.0, &nd1.1);
    expansion_negate(&mut cross2);
    signed_ordering(expansion_sign(&expansion_sum(&cross1, &cross2)))
}

/// `(numerator, denominator)` expansions of a segment's height at `x`.
fn segment_y_numden(l: Point, r: Point, x: f64) -> (Vec<f64>, Vec<f64>) {
    let (dx, dxe) = two_diff(r.x, l.x);
    let den = vec![dxe, dx];
    let (sx, sxe) = two_diff(x, l.x);
    let (dy, dye) = two_diff(r.y, l.y);
    let num = expansion_sum(
        &expansion_scale(&den, l.y),
        &expansion_product(&[sxe, sx], &[dye, dy]),
    );
    (num, den)
}

#[inline]
fn signed_ordering(s: f64) -> std::cmp::Ordering {
    if s > 0.0 {
        std::cmp::Ordering::Greater
    } else if s < 0.0 {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orient2d_clear_cases() {
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) > 0.0);
        assert!(orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)) < 0.0);
        assert_eq!(orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)), 0.0);
    }

    /// Sign class of a float: −1, 0, or +1 (unlike `f64::signum`, maps both
    /// zeros to 0).
    fn sgn(x: f64) -> i32 {
        if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            0
        }
    }

    #[test]
    fn orient2d_degenerate_grid() {
        // All triples from a tiny grid around a huge offset: every collinear
        // triple must report exactly zero and consistent signs otherwise.
        let base = 1e10;
        let pts: Vec<Point> = (0..4)
            .flat_map(|i| (0..4).map(move |j| p(base + i as f64, base + j as f64)))
            .collect();
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    let s1 = orient2d(a, b, c);
                    let s2 = orient2d(b, c, a);
                    let s3 = orient2d(c, a, b);
                    assert_eq!(sgn(s1), sgn(s2));
                    assert_eq!(sgn(s2), sgn(s3));
                    let s4 = orient2d(b, a, c);
                    assert_eq!(sgn(s1), -sgn(s4));
                }
            }
        }
    }

    #[test]
    fn orient2d_adaptive_vs_exact_near_collinear() {
        // Points nearly collinear: the filter must fall through to the exact
        // path, which we validate against integer arithmetic.
        let a = p(0.5, 0.5);
        let b = p(12.0, 12.0);
        for k in -5i64..=5 {
            let c = p(24.0, 24.0 + (k as f64) * f64::EPSILON * 24.0);
            let s = orient2d(a, b, c);
            // Exact rational check: (a-c) x (b-c) computed in exact arithmetic.
            let exact = orient2d_exact(a, b, c);
            assert_eq!(s.signum(), exact.signum(), "k={k}");
        }
    }

    #[test]
    fn incircle_clear_cases() {
        // ccw unit circle through (1,0),(0,1),(-1,0); origin is inside.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(orient2d(a, b, c) > 0.0);
        assert!(incircle(a, b, c, p(0.0, 0.0)) > 0.0);
        assert!(incircle(a, b, c, p(2.0, 0.0)) < 0.0);
        // Cocircular.
        assert_eq!(incircle(a, b, c, p(0.0, -1.0)), 0.0);
    }

    #[test]
    fn incircle_orientation_antisymmetry() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let d = p(0.1, 0.1);
        let pos = incircle(a, b, c, d);
        let neg = incircle(a, c, b, d); // cw order flips the sign
        assert!(pos > 0.0);
        assert!(neg < 0.0);
    }

    #[test]
    fn incircle_cocircular_grid_is_exact() {
        // Four cocircular points with large offsets; naive arithmetic gives a
        // wrong nonzero sign here without the exact fallback.
        let o = 1e7;
        let a = p(o + 1.0, o);
        let b = p(o, o + 1.0);
        let c = p(o - 1.0, o);
        let d = p(o, o - 1.0);
        assert_eq!(incircle(a, b, c, d), 0.0);
        // Perturb d inward by one ulp-scale step: sign must be positive.
        let d_in = p(o, o - 1.0 + 1e-9);
        assert!(incircle(a, b, c, d_in) > 0.0);
        let d_out = p(o, o - 1.0 - 1e-9);
        assert!(incircle(a, b, c, d_out) < 0.0);
    }

    #[test]
    fn expansion_primitives() {
        let (x, y) = two_sum(1e16, 1.0);
        assert_eq!(x + y, 1e16 + 1.0);
        assert_ne!(y, 0.0); // the error term captures the lost bit
        let (x, y) = two_product(1e8 + 1.0, 1e8 - 1.0);
        // (1e8+1)(1e8-1) = 1e16 - 1 exactly; check x + y reconstructs it.
        assert_eq!(x + y, 1e16 - 1.0);

        let e = expansion_sum(&[1.0], &[1e-30]);
        assert_eq!(expansion_estimate(&e), 1.0 + 1e-30);
        assert_eq!(expansion_sign(&e), 1.0);

        let sq = expansion_product(&[1e-30, 1.0], &[1e-30, 1.0]);
        // (1 + 1e-30)² = 1 + 2e-30 + 1e-60, exactly representable as expansion
        assert_eq!(expansion_sign(&sq), 1.0);
    }

    #[test]
    fn expansion_scale_zero() {
        assert!(expansion_scale(&[1.0, 2.0], 0.0).is_empty());
        assert!(expansion_product(&[], &[1.0]).is_empty());
        assert_eq!(expansion_sign(&[]), 0.0);
    }

    #[test]
    fn two_diff_captures_lost_bits() {
        let (x, y) = two_diff(1e16, 1.0);
        assert_eq!(x, 1e16 - 1.0); // rounded difference
        assert_eq!(x + y, 1e16 - 1.0);
        // The pair reconstructs the exact difference as an expansion sum.
        let e = expansion_sum(&[y, x], &[1.0]);
        assert_eq!(expansion_estimate(&e), 1e16);
    }

    #[test]
    fn side_of_segment_classifies() {
        let a = p(0.0, 0.0);
        let b = p(10.0, 10.0);
        assert_eq!(side_of_segment(a, b, p(0.0, 1.0)), Side::Left);
        assert_eq!(side_of_segment(a, b, p(1.0, 0.0)), Side::Right);
        assert_eq!(side_of_segment(a, b, p(7.0, 7.0)), Side::On);
        // Far outside the segment's span but still exactly on the line.
        assert_eq!(side_of_segment(a, b, p(1e9, 1e9)), Side::On);
    }

    #[test]
    fn line_point_sign_exact_on_line() {
        // x + y = 2·10¹⁰ through awkwardly large coordinates.
        let (a, b, c) = (1.0, 1.0, 2e10);
        assert_eq!(line_point_sign(a, b, c, p(1e10, 1e10)), 0.0);
        assert!(line_point_sign(a, b, c, p(1e10, 1e10 + 1e-6)) > 0.0);
        assert!(line_point_sign(a, b, c, p(1e10, 1e10 - 1e-6)) < 0.0);
        // A bisector-style line with irrational-looking coefficients: signs
        // must be anti-symmetric around the exact solution of b·y = c − a·x.
        let (a, b, c) = (0.1, 0.3, 7.7);
        let x = 2.0;
        let y = (c - a * x) / b;
        let above = line_point_sign(a, b, c, p(x, y + 1e-9));
        let below = line_point_sign(a, b, c, p(x, y - 1e-9));
        assert!(above > 0.0 && below < 0.0);
    }

    #[test]
    fn cmp_dist_detects_exact_ties() {
        use std::cmp::Ordering::*;
        let o = 1e8;
        // q exactly on the bisector of a and b, with a large shared offset
        // that defeats naive f64 evaluation.
        let q = p(o, o + 12345.0);
        let a = p(o - 3.0, o);
        let b = p(o + 3.0, o);
        assert_eq!(cmp_dist(q, a, b), Equal);
        // Nudging a.y toward q shortens the distance; away lengthens it.
        // (1e-7 is a few ulps at this magnitude — far below what a naive
        // f64 distance comparison resolves.)
        assert_eq!(cmp_dist(q, p(o - 3.0, o + 1e-7), b), Less);
        assert_eq!(cmp_dist(q, p(o - 3.0, o - 1e-7), b), Greater);
        assert_eq!(cmp_dist(q, p(o - 3.0 - 1e-7, o), b), Greater);
        // Clear cases go through the filter.
        assert_eq!(cmp_dist(p(0.0, 0.0), p(1.0, 0.0), p(5.0, 0.0)), Less);
        assert_eq!(cmp_dist(p(0.0, 0.0), p(-9.0, 1.0), p(2.0, 2.0)), Greater);
    }

    #[test]
    fn cmp_lines_y_at_near_crossings() {
        use std::cmp::Ordering::*;
        // Two lines crossing at x = 1: y = x and y = 2 − x, i.e.
        // (−1, 1, 0) and (1, 1, 2) in a·x + b·y = c form.
        let l1 = (-1.0, 1.0, 0.0);
        let l2 = (1.0, 1.0, 2.0);
        assert_eq!(cmp_lines_y_at(l1, l2, 0.0), Less);
        assert_eq!(cmp_lines_y_at(l1, l2, 2.0), Greater);
        assert_eq!(cmp_lines_y_at(l1, l2, 1.0), Equal); // exactly at the crossing
        let just_left = 1.0 - f64::EPSILON;
        let just_right = 1.0 + f64::EPSILON;
        assert_eq!(cmp_lines_y_at(l1, l2, just_left), Less);
        assert_eq!(cmp_lines_y_at(l1, l2, just_right), Greater);
        // Negative b flips the raw determinant sign; the result must not.
        let l1_neg = (1.0, -1.0, 0.0); // same line as l1
        assert_eq!(cmp_lines_y_at(l1_neg, l2, 0.0), Less);
        assert_eq!(cmp_lines_y_at(l1_neg, l2, 2.0), Greater);
        assert_eq!(cmp_lines_y_at(l1, l1_neg, 17.25), Equal);
    }

    #[test]
    fn cmp_segments_y_at_near_crossings() {
        use std::cmp::Ordering::*;
        let s1 = (p(0.0, 0.0), p(4.0, 4.0));
        let s2 = (p(0.0, 4.0), p(4.0, 0.0)); // crossing at (2, 2)
        assert_eq!(cmp_segments_y_at(s1, s2, 1.0), Less);
        assert_eq!(cmp_segments_y_at(s1, s2, 3.0), Greater);
        assert_eq!(cmp_segments_y_at(s1, s2, 2.0), Equal);
        // Collinear segments over different spans are equal everywhere.
        let t1 = (p(0.0, 1.0), p(8.0, 5.0));
        let t2 = (p(2.0, 2.0), p(6.0, 4.0));
        for x in [2.0, 3.7, 5.0, 6.0] {
            assert_eq!(cmp_segments_y_at(t1, t2, x), Equal);
        }
        // Large offsets: a pair that agrees at x to within far less than an
        // ulp of the coordinates still compares exactly.
        let o = 1e9;
        let u1 = (p(o, o), p(o + 2.0, o + 2.0));
        let u2 = (p(o, o + 1.0), p(o + 2.0, o - 1.0)); // crossing at (o+0.5, o+0.5)
        assert_eq!(cmp_segments_y_at(u1, u2, o + 0.5), Equal);
        assert_eq!(cmp_segments_y_at(u1, u2, o + 0.25), Less);
        assert_eq!(cmp_segments_y_at(u1, u2, o + 0.75), Greater);
    }

    #[test]
    fn crossing_param_is_accurate_for_near_parallel_segments() {
        // Clear crossing: the midpoint.
        let t = crossing_param(p(0.0, 0.0), p(4.0, 4.0), p(0.0, 4.0), p(4.0, 0.0));
        assert_eq!(t, 0.5);
        // Nearly parallel segments crossing at t = 0.5 exactly: s1 from
        // (0, -h) to (2, h) and the x-axis, with h tiny — the naive
        // o1/(o1−o2) quotient loses most digits here.
        for h in [1e-3, 1e-9, 1e-15] {
            let t = crossing_param(p(0.0, -h), p(2.0, h), p(-10.0, 0.0), p(10.0, 0.0));
            assert!((t - 0.5).abs() < 1e-12, "h={h}: t={t}");
        }
        // Asymmetric shallow crossing: s1 from (0, -h) to (3, 2h) crosses
        // y = 0 at t = 1/3 exactly.
        for h in [1e-9, 1e-15] {
            let t = crossing_param(p(0.0, -h), p(3.0, 2.0 * h), p(-10.0, 0.0), p(10.0, 0.0));
            assert!((t - 1.0 / 3.0).abs() < 1e-12, "h={h}: t={t}");
        }
    }

    #[test]
    fn line_intersection_is_accurate_for_near_parallel_lines() {
        // Perpendicular: x = 2 and y = 3.
        let (x, y) = line_intersection((1.0, 0.0, 2.0), (0.0, 1.0, 3.0)).unwrap();
        assert_eq!((x, y), (2.0, 3.0));
        // Exactly parallel (and coincident-scaled): None.
        assert!(line_intersection((1.0, 1.0, 1.0), (2.0, 2.0, 2.0)).is_none());
        assert!(line_intersection((1.0, 2.0, 0.0), (2.0, 4.0, 5.0)).is_none());
        // Near-parallel: y = ε·x and y = −ε·x + 2ε·k cross at x = k
        // exactly; the determinant is 2ε (heavy cancellation in naive f64
        // when the coefficients are expressed with large c terms).
        let eps = 1e-12;
        for k in [1.0, 7.0, 1e6] {
            let l1 = (eps, -1.0, 0.0); // y = ε·x
            let l2 = (-eps, -1.0, -2.0 * eps * k); // y = −ε·x + 2εk
            let (x, y) = line_intersection(l1, l2).unwrap();
            assert!((x - k).abs() <= 1e-9 * k.abs().max(1.0), "k={k}: x={x}");
            assert!((y - eps * k).abs() <= 1e-9, "k={k}: y={y}");
        }
    }

    #[test]
    fn filter_stats_accumulate() {
        let before = predicate_stats();
        // Clear-cut calls: all filter hits.
        for i in 0..64 {
            let t = i as f64;
            assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(t, 1.0)) > 0.0);
        }
        // Degenerate calls: exact fallbacks (collinear with huge offsets).
        for i in 0..16 {
            let t = 1e10 + i as f64;
            assert_eq!(
                orient2d(p(1e10, 1e10), p(t + 1.0, t + 1.0), p(t + 3.0, t + 3.0)),
                0.0
            );
        }
        let delta = predicate_stats().since(&before);
        // Other test threads may add calls concurrently, so assert lower
        // bounds only.
        assert!(delta.filter_hits >= 64, "hits: {delta:?}");
        assert!(delta.exact_fallbacks >= 16, "fallbacks: {delta:?}");
        assert!(delta.total() >= 80);
        assert!(delta.filter_hit_rate() > 0.0);
    }
}
