//! Adaptive-precision geometric predicates.
//!
//! `orient2d` and `incircle` are evaluated with a fast floating-point filter
//! first (with a forward error bound following Shewchuk, *Adaptive Precision
//! Floating-Point Arithmetic and Fast Robust Geometric Predicates*, 1997).
//! When the filter cannot certify the sign, the determinant is recomputed
//! *exactly* using multi-term floating-point expansions, so the returned sign
//! is always correct. This is what makes the Delaunay triangulation and the
//! arrangement substrates immune to near-degenerate inputs such as the
//! paper's lower-bound constructions (which place many points cocircularly on
//! purpose).

use crate::point::Point;

/// Half an ulp of 1.0: the machine epsilon in Shewchuk's convention (2⁻⁵³).
const EPSILON: f64 = 1.110_223_024_625_156_5e-16;
/// 2²⁷ + 1, used to split a double into two 26-bit halves.
const SPLITTER: f64 = 134_217_729.0;

const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
const ICC_ERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;

// ---------------------------------------------------------------------------
// Exact floating-point primitives
// ---------------------------------------------------------------------------

/// Exact sum assuming `|a| >= |b|`: returns `(x, y)` with `a + b = x + y`
/// exactly and `x = fl(a + b)`.
#[inline]
fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    (x, b - bv)
}

/// Exact sum of two doubles: `a + b = x + y` with `x = fl(a + b)`.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    let av = x - bv;
    let br = b - bv;
    let ar = a - av;
    (x, ar + br)
}

/// Splits `a` into two non-overlapping halves `(hi, lo)` with `a = hi + lo`.
#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let hi = c - abig;
    (hi, a - hi)
}

/// Exact product: `a * b = x + y` with `x = fl(a * b)`.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

// ---------------------------------------------------------------------------
// Expansion arithmetic (components sorted by increasing magnitude,
// zero-eliminated)
// ---------------------------------------------------------------------------

/// Sum of two expansions (Shewchuk's `FAST_EXPANSION_SUM_ZEROELIM`).
pub fn expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    if e.is_empty() {
        return f.iter().copied().filter(|&x| x != 0.0).collect();
    }
    if f.is_empty() {
        return e.iter().copied().filter(|&x| x != 0.0).collect();
    }
    let mut h = Vec::with_capacity(e.len() + f.len());
    let (mut i, mut j) = (0usize, 0usize);
    // Start with the smaller-magnitude head.
    let mut q = if (f[0] > e[0]) == (f[0] > -e[0]) {
        i = 1;
        e[0]
    } else {
        j = 1;
        f[0]
    };
    if i < e.len() && j < f.len() {
        let (qnew, hh) = if (f[j] > e[i]) == (f[j] > -e[i]) {
            let r = fast_two_sum(e[i], q);
            i += 1;
            r
        } else {
            let r = fast_two_sum(f[j], q);
            j += 1;
            r
        };
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
        while i < e.len() && j < f.len() {
            let (qnew, hh) = if (f[j] > e[i]) == (f[j] > -e[i]) {
                let r = two_sum(q, e[i]);
                i += 1;
                r
            } else {
                let r = two_sum(q, f[j]);
                j += 1;
                r
            };
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
        }
    }
    while i < e.len() {
        let (qnew, hh) = two_sum(q, e[i]);
        i += 1;
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
    }
    while j < f.len() {
        let (qnew, hh) = two_sum(q, f[j]);
        j += 1;
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Product of an expansion by a double (`SCALE_EXPANSION_ZEROELIM`).
pub fn expansion_scale(e: &[f64], b: f64) -> Vec<f64> {
    if e.is_empty() || b == 0.0 {
        return vec![];
    }
    let mut h = Vec::with_capacity(2 * e.len());
    let (mut q, hh) = two_product(e[0], b);
    if hh != 0.0 {
        h.push(hh);
    }
    for &ei in &e[1..] {
        let (p1, p0) = two_product(ei, b);
        let (sum, hh) = two_sum(q, p0);
        if hh != 0.0 {
            h.push(hh);
        }
        let (qnew, hh) = fast_two_sum(p1, sum);
        if hh != 0.0 {
            h.push(hh);
        }
        q = qnew;
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Exact product of two expansions (distributes `expansion_scale` over `f`).
pub fn expansion_product(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut acc: Vec<f64> = vec![];
    for &fi in f {
        let partial = expansion_scale(e, fi);
        acc = expansion_sum(&acc, &partial);
    }
    acc
}

/// Negates an expansion in place.
pub fn expansion_negate(e: &mut [f64]) {
    for x in e {
        *x = -*x;
    }
}

/// The sign of the exact value represented by the expansion: the sign of the
/// largest-magnitude (last nonzero) component.
pub fn expansion_sign(e: &[f64]) -> f64 {
    for &x in e.iter().rev() {
        if x != 0.0 {
            return if x > 0.0 { 1.0 } else { -1.0 };
        }
    }
    0.0
}

/// Rounded value of the expansion (sum of components, largest last so the
/// result is faithfully rounded).
pub fn expansion_estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

// ---------------------------------------------------------------------------
// orient2d
// ---------------------------------------------------------------------------

/// Exact sign of the signed area of triangle `(a, b, c)`.
///
/// Returns a value whose **sign** is exact: positive when `a, b, c` make a
/// left (counter-clockwise) turn, negative for a right turn, and zero when
/// collinear.
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return det;
        }
        -detleft - detright
    } else {
        return det;
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }
    orient2d_exact(a, b, c)
}

/// Non-robust single-precision-path orientation (useful when the caller only
/// needs an approximate value, e.g. for sorting nearly-ordered data).
#[inline]
pub fn orient2d_fast(a: Point, b: Point, c: Point) -> f64 {
    (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x)
}

/// Fully exact orientation determinant computed with expansions:
/// `ax·by − ax·cy − cx·by − ay·bx + ay·cx + cy·bx`.
fn orient2d_exact(a: Point, b: Point, c: Point) -> f64 {
    let terms = [
        two_product(a.x, b.y),
        two_product(-a.x, c.y),
        two_product(-c.x, b.y),
        two_product(-a.y, b.x),
        two_product(a.y, c.x),
        two_product(c.y, b.x),
    ];
    let mut acc: Vec<f64> = vec![];
    for (hi, lo) in terms {
        acc = expansion_sum(&acc, &[lo, hi]);
    }
    let s = expansion_sign(&acc);
    if s == 0.0 {
        0.0
    } else {
        // Return a value with the exact sign and a magnitude close to the
        // exact one, so callers can still use it quantitatively.
        let est = expansion_estimate(&acc);
        if est != 0.0 {
            est
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

// ---------------------------------------------------------------------------
// incircle
// ---------------------------------------------------------------------------

/// Exact-sign in-circle test.
///
/// With `a, b, c` in counter-clockwise order, the result is positive iff `d`
/// lies strictly inside the circle through `a, b, c`, negative iff strictly
/// outside, zero iff cocircular. (If `a, b, c` are clockwise the sign is
/// reversed.)
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return det;
    }
    incircle_exact(a, b, c, d)
}

/// Orientation 3×3 minor `det[[px,py,1],[qx,qy,1],[rx,ry,1]]` as an exact
/// expansion (the cofactors of the lifted 4×4 in-circle determinant).
fn orient_expansion(p: Point, q: Point, r: Point) -> Vec<f64> {
    // p.x*q.y - p.y*q.x - p.x*r.y + p.y*r.x + q.x*r.y - q.y*r.x
    let terms = [
        two_product(p.x, q.y),
        two_product(-p.y, q.x),
        two_product(-p.x, r.y),
        two_product(p.y, r.x),
        two_product(q.x, r.y),
        two_product(-q.y, r.x),
    ];
    let mut acc: Vec<f64> = vec![];
    for (hi, lo) in terms {
        acc = expansion_sum(&acc, &[lo, hi]);
    }
    acc
}

/// The lifted coordinate `px² + py²` as an exact expansion.
fn lift_expansion(p: Point) -> Vec<f64> {
    let (x1, x0) = two_product(p.x, p.x);
    let (y1, y0) = two_product(p.y, p.y);
    expansion_sum(&[x0, x1], &[y0, y1])
}

/// Exact in-circle determinant via cofactor expansion of
/// `det[[x, y, x²+y², 1]]` over rows `a, b, c, d`.
fn incircle_exact(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let la = lift_expansion(a);
    let lb = lift_expansion(b);
    let lc = lift_expansion(c);
    let ld = lift_expansion(d);

    let oa = orient_expansion(b, c, d);
    let mut ob = orient_expansion(a, c, d);
    let oc = orient_expansion(a, b, d);
    let mut od = orient_expansion(a, b, c);
    expansion_negate(&mut ob);
    expansion_negate(&mut od);

    let mut det = expansion_product(&la, &oa);
    det = expansion_sum(&det, &expansion_product(&lb, &ob));
    det = expansion_sum(&det, &expansion_product(&lc, &oc));
    det = expansion_sum(&det, &expansion_product(&ld, &od));

    let s = expansion_sign(&det);
    if s == 0.0 {
        0.0
    } else {
        let est = expansion_estimate(&det);
        if est != 0.0 {
            est
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orient2d_clear_cases() {
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) > 0.0);
        assert!(orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)) < 0.0);
        assert_eq!(orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)), 0.0);
    }

    /// Sign class of a float: −1, 0, or +1 (unlike `f64::signum`, maps both
    /// zeros to 0).
    fn sgn(x: f64) -> i32 {
        if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            0
        }
    }

    #[test]
    fn orient2d_degenerate_grid() {
        // All triples from a tiny grid around a huge offset: every collinear
        // triple must report exactly zero and consistent signs otherwise.
        let base = 1e10;
        let pts: Vec<Point> = (0..4)
            .flat_map(|i| (0..4).map(move |j| p(base + i as f64, base + j as f64)))
            .collect();
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    let s1 = orient2d(a, b, c);
                    let s2 = orient2d(b, c, a);
                    let s3 = orient2d(c, a, b);
                    assert_eq!(sgn(s1), sgn(s2));
                    assert_eq!(sgn(s2), sgn(s3));
                    let s4 = orient2d(b, a, c);
                    assert_eq!(sgn(s1), -sgn(s4));
                }
            }
        }
    }

    #[test]
    fn orient2d_adaptive_vs_exact_near_collinear() {
        // Points nearly collinear: the filter must fall through to the exact
        // path, which we validate against integer arithmetic.
        let a = p(0.5, 0.5);
        let b = p(12.0, 12.0);
        for k in -5i64..=5 {
            let c = p(24.0, 24.0 + (k as f64) * f64::EPSILON * 24.0);
            let s = orient2d(a, b, c);
            // Exact rational check: (a-c) x (b-c) computed in exact arithmetic.
            let exact = orient2d_exact(a, b, c);
            assert_eq!(s.signum(), exact.signum(), "k={k}");
        }
    }

    #[test]
    fn incircle_clear_cases() {
        // ccw unit circle through (1,0),(0,1),(-1,0); origin is inside.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(orient2d(a, b, c) > 0.0);
        assert!(incircle(a, b, c, p(0.0, 0.0)) > 0.0);
        assert!(incircle(a, b, c, p(2.0, 0.0)) < 0.0);
        // Cocircular.
        assert_eq!(incircle(a, b, c, p(0.0, -1.0)), 0.0);
    }

    #[test]
    fn incircle_orientation_antisymmetry() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let d = p(0.1, 0.1);
        let pos = incircle(a, b, c, d);
        let neg = incircle(a, c, b, d); // cw order flips the sign
        assert!(pos > 0.0);
        assert!(neg < 0.0);
    }

    #[test]
    fn incircle_cocircular_grid_is_exact() {
        // Four cocircular points with large offsets; naive arithmetic gives a
        // wrong nonzero sign here without the exact fallback.
        let o = 1e7;
        let a = p(o + 1.0, o);
        let b = p(o, o + 1.0);
        let c = p(o - 1.0, o);
        let d = p(o, o - 1.0);
        assert_eq!(incircle(a, b, c, d), 0.0);
        // Perturb d inward by one ulp-scale step: sign must be positive.
        let d_in = p(o, o - 1.0 + 1e-9);
        assert!(incircle(a, b, c, d_in) > 0.0);
        let d_out = p(o, o - 1.0 - 1e-9);
        assert!(incircle(a, b, c, d_out) < 0.0);
    }

    #[test]
    fn expansion_primitives() {
        let (x, y) = two_sum(1e16, 1.0);
        assert_eq!(x + y, 1e16 + 1.0);
        assert_ne!(y, 0.0); // the error term captures the lost bit
        let (x, y) = two_product(1e8 + 1.0, 1e8 - 1.0);
        // (1e8+1)(1e8-1) = 1e16 - 1 exactly; check x + y reconstructs it.
        assert_eq!(x + y, 1e16 - 1.0);

        let e = expansion_sum(&[1.0], &[1e-30]);
        assert_eq!(expansion_estimate(&e), 1.0 + 1e-30);
        assert_eq!(expansion_sign(&e), 1.0);

        let sq = expansion_product(&[1e-30, 1.0], &[1e-30, 1.0]);
        // (1 + 1e-30)² = 1 + 2e-30 + 1e-60, exactly representable as expansion
        assert_eq!(expansion_sign(&sq), 1.0);
    }

    #[test]
    fn expansion_scale_zero() {
        assert!(expansion_scale(&[1.0, 2.0], 0.0).is_empty());
        assert!(expansion_product(&[], &[1.0]).is_empty());
        assert_eq!(expansion_sign(&[]), 0.0);
    }
}
