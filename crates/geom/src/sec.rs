//! Smallest enclosing circle (Welzl's algorithm, expected linear time).
//!
//! Used to summarize discrete uncertain points: the branch-and-bound
//! computation of `Δ(q) = min_i max_j ‖q − p_ij‖` relies on the facts that
//! for the smallest enclosing circle `(c_i, rad_i)` of `P_i`,
//! `max_j ‖q − p_ij‖ ≥ max(‖q − c_i‖, rad_i)` and
//! `max_j ‖q − p_ij‖ ≤ ‖q − c_i‖ + rad_i`.

use crate::circle::Circle;
use crate::point::Point;

/// Relative slack when testing membership, to absorb accumulated rounding.
const SEC_EPS: f64 = 1e-10;

fn covers(c: &Circle, p: Point, scale: f64) -> bool {
    c.center.dist(p) <= c.radius + SEC_EPS * scale
}

/// Smallest circle through one or two points.
fn circle_two(a: Point, b: Point) -> Circle {
    Circle::diametral(a, b)
}

/// Smallest circle with `a`, `b` on the boundary containing the set — either
/// the diametral circle or a circumcircle.
fn circle_three(a: Point, b: Point, c: Point) -> Circle {
    Circle::circumcircle(a, b, c).unwrap_or_else(|| {
        // Collinear: the diametral circle of the farthest pair.
        let dab = a.dist(b);
        let dac = a.dist(c);
        let dbc = b.dist(c);
        if dab >= dac && dab >= dbc {
            circle_two(a, b)
        } else if dac >= dbc {
            circle_two(a, c)
        } else {
            circle_two(b, c)
        }
    })
}

/// Smallest enclosing circle of `points`.
///
/// Returns a zero-radius circle for a single point and `None` for an empty
/// slice. Expected `O(n)` after an internal deterministic shuffle.
pub fn smallest_enclosing_circle(points: &[Point]) -> Option<Circle> {
    if points.is_empty() {
        return None;
    }
    let scale = points
        .iter()
        .map(|p| p.x.abs().max(p.y.abs()))
        .fold(1.0f64, f64::max);

    // Deterministic shuffle (splitmix64) so adversarial input orderings do
    // not trigger the quadratic worst case.
    let mut pts: Vec<Point> = points.to_vec();
    let mut state = 0x853c49e6748fea9bu64 ^ (points.len() as u64);
    for i in (1..pts.len()).rev() {
        state = state
            .wrapping_add(0x9e3779b97f4a7c15)
            .wrapping_mul(0xbf58476d1ce4e5b9);
        let j = (state % (i as u64 + 1)) as usize;
        pts.swap(i, j);
    }

    let mut c = Circle::point(pts[0]);
    for i in 1..pts.len() {
        if covers(&c, pts[i], scale) {
            continue;
        }
        // pts[i] must be on the boundary.
        c = Circle::point(pts[i]);
        for j in 0..i {
            if covers(&c, pts[j], scale) {
                continue;
            }
            c = circle_two(pts[i], pts[j]);
            for k in 0..j {
                if covers(&c, pts[k], scale) {
                    continue;
                }
                c = circle_three(pts[i], pts[j], pts[k]);
            }
        }
    }
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn check_covers_all(c: &Circle, pts: &[Point]) {
        for &q in pts {
            assert!(
                c.center.dist(q) <= c.radius + 1e-7 * (1.0 + c.radius),
                "{q} escapes {c:?}"
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(smallest_enclosing_circle(&[]).is_none());
        let single = smallest_enclosing_circle(&[p(3.0, 4.0)]).unwrap();
        assert_eq!(single.center, p(3.0, 4.0));
        assert_eq!(single.radius, 0.0);
        let pair = smallest_enclosing_circle(&[p(0.0, 0.0), p(2.0, 0.0)]).unwrap();
        assert!((pair.radius - 1.0).abs() < 1e-12);
        assert!(pair.center.dist(p(1.0, 0.0)) < 1e-12);
    }

    #[test]
    fn duplicates_and_collinear() {
        let pts = [p(0.0, 0.0), p(0.0, 0.0), p(4.0, 0.0), p(2.0, 0.0)];
        let c = smallest_enclosing_circle(&pts).unwrap();
        check_covers_all(&c, &pts);
        assert!((c.radius - 2.0).abs() < 1e-9);
    }

    #[test]
    fn square_and_triangle() {
        let sq = [p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        let c = smallest_enclosing_circle(&sq).unwrap();
        check_covers_all(&c, &sq);
        assert!((c.radius - (0.5f64.sqrt())).abs() < 1e-9);

        let tri = [p(0.0, 0.0), p(4.0, 0.0), p(2.0, 0.5)];
        let c = smallest_enclosing_circle(&tri).unwrap();
        // Obtuse triangle: SEC is the diametral circle of the longest side.
        assert!((c.radius - 2.0).abs() < 1e-9);
        check_covers_all(&c, &tri);
    }

    #[test]
    fn minimality_against_brute_force() {
        // On small random sets, compare against brute-force over all
        // candidate circles (pairs and triples).
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0
        };
        for trial in 0..50 {
            let pts: Vec<Point> = (0..7).map(|_| p(next(), next())).collect();
            let c = smallest_enclosing_circle(&pts).unwrap();
            check_covers_all(&c, &pts);
            // Brute force minimal radius.
            let mut best = f64::INFINITY;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let cand = circle_two(pts[i], pts[j]);
                    if pts.iter().all(|&q| covers(&cand, q, 10.0)) {
                        best = best.min(cand.radius);
                    }
                    for k in (j + 1)..pts.len() {
                        let cand = circle_three(pts[i], pts[j], pts[k]);
                        if pts.iter().all(|&q| covers(&cand, q, 10.0)) {
                            best = best.min(cand.radius);
                        }
                    }
                }
            }
            assert!(
                (c.radius - best).abs() < 1e-6 * (1.0 + best),
                "trial {trial}: welzl {} vs brute {best}",
                c.radius
            );
        }
    }
}
