//! Env-var configuration parsing with loud-but-once failure reporting.
//!
//! Every `UNC_*` override in the workspace used to fall back to its
//! default *silently* on a typo (`UNC_ENGINE_THREADS=four`), which
//! misconfigures deployments with no signal. [`env_parse`] is the one
//! shared parse path: unset means `None`, a valid value parses, and an
//! invalid value warns **once per variable** on stderr — naming the
//! variable, the rejected value, and the fallback being used — then
//! behaves as unset.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Mutex;

/// Variables already warned about (once per process per name).
static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Parses `$name` as a `T`.
///
/// * unset → `None`, silently;
/// * parses (after trimming) → `Some(value)`;
/// * set but unparsable → `None`, after warning once on stderr with the
///   variable name, the offending value, and `fallback` (a short
///   description of what the caller will use instead).
pub fn env_parse<T: FromStr>(name: &str, fallback: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(name, &raw, fallback);
            None
        }
    }
}

/// Records that `name` was invalid and prints the warning the first time.
fn warn_once(name: &str, raw: &str, fallback: &str) {
    let mut warned = WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if warned.insert(name.to_string()) {
        eprintln!("warning: ignoring invalid {name}={raw:?}; using {fallback}");
    }
}

/// Whether an invalid value for `name` has already been reported (test
/// hook; also lets callers branch on "misconfigured vs unset" if needed).
pub fn env_warned(name: &str) -> bool {
    WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .contains(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a unique variable name: env mutation is process-global
    // and the test harness runs tests concurrently.

    #[test]
    fn unset_is_silently_none() {
        assert_eq!(env_parse::<usize>("UNC_TEST_ENV_UNSET", "default"), None);
        assert!(!env_warned("UNC_TEST_ENV_UNSET"));
    }

    #[test]
    fn valid_values_parse_with_trim() {
        std::env::set_var("UNC_TEST_ENV_VALID", " 42 ");
        assert_eq!(
            env_parse::<usize>("UNC_TEST_ENV_VALID", "default"),
            Some(42)
        );
        assert!(!env_warned("UNC_TEST_ENV_VALID"));
        std::env::set_var("UNC_TEST_ENV_VALID_F", "0.5");
        assert_eq!(
            env_parse::<f64>("UNC_TEST_ENV_VALID_F", "default"),
            Some(0.5)
        );
    }

    #[test]
    fn invalid_values_warn_once_and_fall_through() {
        std::env::set_var("UNC_TEST_ENV_BAD", "four");
        assert_eq!(env_parse::<usize>("UNC_TEST_ENV_BAD", "default"), None);
        assert!(env_warned("UNC_TEST_ENV_BAD"));
        // Second parse still returns None and does not re-insert (the
        // warning fires only once; observable only as no-panic here).
        assert_eq!(env_parse::<usize>("UNC_TEST_ENV_BAD", "default"), None);
    }

    #[test]
    fn negative_numbers_are_invalid_for_unsigned() {
        std::env::set_var("UNC_TEST_ENV_NEG", "-3");
        assert_eq!(env_parse::<usize>("UNC_TEST_ENV_NEG", "default"), None);
        assert!(env_warned("UNC_TEST_ENV_NEG"));
        // ...but parse fine as signed.
        std::env::set_var("UNC_TEST_ENV_NEG_OK", "-3");
        assert_eq!(env_parse::<i64>("UNC_TEST_ENV_NEG_OK", "default"), Some(-3));
    }
}
