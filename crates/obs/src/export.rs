//! Exposition: [`MetricsSnapshot`] (stable-ordered capture of the whole
//! registry), its text/JSON dump APIs (schema `obs/v1`), and the periodic
//! JSON-lines [`Flusher`] for long experiment runs.
//!
//! The JSON is hand-rolled and std-only, like the `bench-kernels/v1`
//! writer in `uncertain_bench::measure`. Field ordering is stable: metric
//! names ascend within each section, and each histogram object always
//! emits `count, sum, mean, p50, p95, p99, max` in that order — consumers
//! may diff dumps textually.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use crate::metrics::HistSnapshot;
use crate::registry::registry;

/// Environment variable naming the JSON-lines file the flusher appends to.
pub const FLUSH_ENV: &str = "UNC_OBS_FLUSH";
/// Environment variable overriding the flush interval in milliseconds.
pub const FLUSH_MS_ENV: &str = "UNC_OBS_FLUSH_MS";

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, f64)>,
    pub histograms: Vec<(&'static str, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Captures the process-global registry.
    pub fn capture() -> Self {
        MetricsSnapshot {
            counters: registry().counters(),
            gauges: registry().gauges(),
            histograms: registry().histograms(),
        }
    }

    /// Human-readable dump: counters, gauges, then histograms with
    /// count/mean/p50/p95/p99 (nanosecond histograms print as time).
    pub fn dump(&self) -> String {
        let mut out = String::from("== metrics snapshot (obs/v1)\n");
        if !self.counters.is_empty() {
            out.push_str("-- counters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("   {name:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("-- gauges\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("   {name:<44} {v:.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "-- histograms               count      mean       p50       p95       p99\n",
            );
            for (name, h) in &self.histograms {
                let n = h.count();
                out.push_str(&format!(
                    "   {name:<24} {n:>9} {:>9} {:>9} {:>9} {:>9}\n",
                    fmt_ns(h.mean() as u64),
                    fmt_ns(h.quantile(0.50)),
                    fmt_ns(h.quantile(0.95)),
                    fmt_ns(h.quantile(0.99)),
                ));
            }
        }
        out
    }

    /// Pretty-printed `obs/v1` JSON document.
    pub fn to_json(&self) -> String {
        self.json_impl(true)
    }

    /// One-line `obs/v1` JSON document (what the flusher appends).
    pub fn to_json_line(&self) -> String {
        self.json_impl(false)
    }

    fn json_impl(&self, pretty: bool) -> String {
        let (nl, ind) = if pretty { ("\n", "  ") } else { ("", "") };
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = format!("{{{nl}{ind}\"schema\":\"obs/v1\",{nl}{ind}\"ts_unix\":{ts},{nl}");
        out.push_str(&format!("{ind}\"counters\":{{"));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str(&format!("}},{nl}{ind}\"gauges\":{{"));
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", json_f64(*v)));
        }
        out.push_str(&format!("}},{nl}{ind}\"histograms\":{{"));
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                h.count(),
                h.sum,
                json_f64(h.mean()),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max_value(),
            ));
        }
        out.push_str(&format!("}}{nl}}}"));
        out
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Formats nanoseconds compactly (`873ns`, `12.4µs`, `3.1ms`, `2.0s`).
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.1}s", ns / 1e9)
    }
}

/// A background thread appending one [`MetricsSnapshot::to_json_line`] to a
/// file per interval; stops (with one final line) on drop.
pub struct Flusher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    /// Starts flushing to `path` (created/truncated) every `interval`.
    pub fn start(path: &str, interval: Duration) -> std::io::Result<Flusher> {
        let mut file = std::fs::File::create(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-flusher".into())
            .spawn(move || {
                // Sleep in short slices so drop doesn't block a full interval.
                let slice = Duration::from_millis(25).min(interval);
                let mut elapsed = Duration::ZERO;
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        let _ = writeln!(file, "{}", MetricsSnapshot::capture().to_json_line());
                    }
                }
                // Final snapshot so short runs still emit at least one line.
                let _ = writeln!(file, "{}", MetricsSnapshot::capture().to_json_line());
            })
            .expect("spawn obs flusher");
        Ok(Flusher {
            stop,
            handle: Some(handle),
        })
    }

    /// Starts a flusher if `UNC_OBS_FLUSH` names a file; interval from
    /// `UNC_OBS_FLUSH_MS` (default 1000 ms). `None` (and a stderr note on
    /// an unwritable path) otherwise.
    pub fn from_env() -> Option<Flusher> {
        let path = std::env::var(FLUSH_ENV).ok()?;
        let ms = crate::env_parse::<u64>(FLUSH_MS_ENV, "the default 1000 ms interval")
            .unwrap_or(1000)
            .max(1);
        match Flusher::start(&path, Duration::from_millis(ms)) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("obs: cannot flush to {path:?}: {e}");
                None
            }
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_orders_and_dumps() {
        registry().counter("test.export.b").add(2);
        registry().counter("test.export.a").inc();
        registry().gauge("test.export.g").set(1.5);
        registry().histogram("test.export.h").record(1000);
        let s = MetricsSnapshot::capture();
        let names: Vec<_> = s.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counters sorted by name");
        let dump = s.dump();
        assert!(dump.contains("test.export.a"));
        assert!(dump.contains("test.export.g"));
        let json = s.to_json_line();
        assert!(json.starts_with("{\"schema\":\"obs/v1\""));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"test.export.h\":{\"count\":"));
        // Pretty and line forms carry the same sections.
        for key in ["\"counters\":", "\"gauges\":", "\"histograms\":"] {
            assert!(json.contains(key) && s.to_json().contains(key));
        }
    }

    #[test]
    fn flusher_writes_json_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join("obs_flusher_test.jsonl");
        let path = path.to_str().unwrap();
        {
            let f = Flusher::start(path, Duration::from_millis(10)).unwrap();
            registry().counter("test.export.flush").inc();
            std::thread::sleep(Duration::from_millis(60));
            drop(f);
        }
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.lines().count() >= 2, "periodic + final lines");
        for line in body.lines() {
            assert!(line.starts_with("{\"schema\":\"obs/v1\""));
            assert!(line.ends_with('}'));
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(873), "873ns");
        assert_eq!(fmt_ns(12_400), "12.4µs");
        assert_eq!(fmt_ns(3_100_000), "3.1ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.0s");
    }
}
