//! `uncertain_obs` — std-only tracing + metrics for the uncertain-nn
//! stack: a process-global registry of named [`Counter`]s, [`Gauge`]s, and
//! log₂-bucketed [`Histogram`]s; RAII [`Span`] guards that record wall
//! time (and rdtsc cycles where available); and `obs/v1` exposition via
//! [`MetricsSnapshot`] plus a periodic JSON-lines [`Flusher`].
//!
//! Design constraints, in order:
//!
//! 1. **Lock-free hot path.** Updating any metric is a few `Relaxed`
//!    atomic ops. The registry mutex is touched only when a *name* is
//!    first resolved; the [`counter!`]/[`gauge!`]/[`histogram!`]/[`span!`]
//!    macros cache the resolved handle in a per-callsite `OnceLock`.
//! 2. **No dependencies.** Every workspace crate (geom upward) layers on
//!    this one, so it sits at the bottom of the graph: std only, no serde.
//! 3. **Stable exposition.** Snapshots list metrics sorted by name with a
//!    fixed per-histogram field order, so dumps diff cleanly and the
//!    `obs/v1` schema can be validated by the tiny checker in
//!    `uncertain_bench`.
//!
//! Naming convention: `layer.component.metric` with the layer prefixes
//! `geom.`, `spatial.`, `dynamic.`, `engine.`, `bench.` (see the README's
//! Observability section for the full span list per layer). Span
//! histograms record nanoseconds; each gets a `<name>.cycles` twin on
//! x86_64.
//!
//! ```
//! uncertain_obs::counter!("docs.example.hits").inc();
//! {
//!     let _span = uncertain_obs::span!("docs.example.work");
//!     // ... timed region ...
//! }
//! let snap = uncertain_obs::MetricsSnapshot::capture();
//! assert!(snap.counters.iter().any(|(n, v)| *n == "docs.example.hits" && *v >= 1));
//! ```

pub mod envcfg;
pub mod export;
pub mod metrics;
pub mod registry;
pub mod span;

pub use envcfg::{env_parse, env_warned};
pub use export::{fmt_ns, Flusher, MetricsSnapshot, FLUSH_ENV, FLUSH_MS_ENV};
pub use metrics::{
    bucket_index, bucket_upper, Counter, Gauge, HistSnapshot, Histogram, HIST_BUCKETS,
};
pub use registry::{registry, span_delta, Registry, SpanStat};
pub use span::{cycles_now, has_cycle_counter, span_dyn, trace, Span};

/// Resolves (once per callsite) and returns the `&'static Counter` named
/// by the literal.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Resolves (once per callsite) and returns the `&'static Gauge` named by
/// the literal.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Resolves (once per callsite) and returns the `&'static Histogram`
/// named by the literal.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Opens a [`Span`] recording wall nanoseconds into the histogram named by
/// the literal (and cycles into `<name>.cycles` on x86_64) when dropped.
/// Bind it — `let _span = span!("engine.apply");` — or the region is zero
/// width.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        let ns = $crate::histogram!($name);
        let cycles = if $crate::has_cycle_counter() {
            Some($crate::histogram!(concat!($name, ".cycles")))
        } else {
            None
        };
        $crate::Span::with($name, ns, cycles)
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_handles() {
        let a = crate::counter!("test.lib.macro_counter");
        let b = crate::counter!("test.lib.macro_counter");
        assert!(std::ptr::eq(a, b));
        crate::gauge!("test.lib.macro_gauge").set(3.0);
        crate::histogram!("test.lib.macro_hist").record(7);
        let s = crate::MetricsSnapshot::capture();
        assert!(s
            .gauges
            .iter()
            .any(|(n, v)| *n == "test.lib.macro_gauge" && *v == 3.0));
    }
}
