//! The three metric kinds: [`Counter`], [`Gauge`], and the log-bucketed
//! [`Histogram`], plus the immutable [`HistSnapshot`] that quantiles are
//! computed from.
//!
//! Every update is a handful of `Relaxed` atomic operations — no locks on
//! the hot path. Cross-metric consistency is *not* promised (a snapshot
//! taken mid-update may see counter A bumped but counter B not yet);
//! within one histogram, quantiles are always computed from a single
//! copied bucket array, so `p50 ≤ p95 ≤ p99` holds in every snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing `u64` (resettable for test isolation and the
/// legacy `reset_*_stats` entry points).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` stored as bits in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (running-maximum gauges,
    /// e.g. peak heap). Non-atomic read-modify-write across *different*
    /// writers is resolved by a compare-exchange loop.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if v <= f64::from_bits(cur) {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: one for the value 0 plus one per power of
/// two up to `2^63`.
pub const HIST_BUCKETS: usize = 65;

/// Maps a value to its bucket index. Bucket 0 holds exactly the value 0;
/// bucket `b ≥ 1` holds the half-open range `[2^(b-1), 2^b)` — closed on
/// the lower edge, open on the upper, so a value exactly at a power of two
/// lands in the *higher* bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of a bucket (the value quantiles resolve to).
pub fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
/// Recording is two relaxed `fetch_add`s; quantiles are nearest-rank over
/// the bucket counts with the same rank-snapping convention as
/// `uncertain_bench::measure::summarize`, resolved to the bucket's upper
/// edge (a ≤ 2× overestimate by construction).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies the bucket array once; all derived statistics ([`count`],
    /// [`quantile`], …) come from that single copy, which is what makes
    /// quantiles monotone even when writers race the snapshot.
    ///
    /// [`count`]: HistSnapshot::count
    /// [`quantile`]: HistSnapshot::quantile
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of a histogram's buckets at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of recorded values. Read from a separate atomic, so it may be
    /// an update ahead of or behind `buckets` under concurrency — use it
    /// for the mean, not for invariants.
    pub sum: u64,
}

impl HistSnapshot {
    /// Total samples (derived from the bucket copy, never torn).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Nearest-rank quantile, resolved to the upper edge of the containing
    /// bucket. Uses the same `p·n` rank-snapping as
    /// `uncertain_bench::measure::summarize`. Returns 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let exact = p * n as f64;
        let nearest = exact.round();
        let rank = if (exact - nearest).abs() <= 1e-9 * nearest.max(1.0) {
            nearest
        } else {
            exact.ceil()
        };
        let rank = (rank as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// Upper edge of the highest non-empty bucket (0 when empty).
    pub fn max_value(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_upper)
            .unwrap_or(0)
    }

    /// Bucketwise difference `self − earlier` (saturating), for per-window
    /// deltas in the style of `PredicateStats::since`.
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].saturating_sub(earlier.buckets[b])),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_closed_open() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for b in 1..64usize {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_index(lo), b, "lower edge 2^{} closed", b - 1);
            assert_eq!(bucket_index(2 * lo - 1), b, "upper edge open");
            if b < 63 {
                assert_eq!(bucket_index(2 * lo), b + 1, "2^{b} rolls over");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_match_summarize_convention() {
        let h = Histogram::new();
        // 20 samples spread over distinct buckets: ranks are unambiguous.
        for i in 0..20u64 {
            h.record(1 << i);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 20);
        // p50 → rank 10 → sample 2^9 → bucket 10 upper edge 2^10−1.
        assert_eq!(s.quantile(0.50), (1 << 10) - 1);
        // 0.95·20 snaps to rank 19 (not 20) exactly as summarize() does.
        assert_eq!(s.quantile(0.95), (1 << 19) - 1);
        assert_eq!(s.quantile(1.0), s.max_value());
        assert_eq!(s.quantile(0.0), (1 << 1) - 1); // rank clamps to 1
    }

    #[test]
    fn since_subtracts_bucketwise() {
        let h = Histogram::new();
        h.record(3);
        let before = h.snapshot();
        h.record(3);
        h.record(100);
        let d = h.snapshot().since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum, 103);
    }

    #[test]
    fn gauge_set_max_keeps_maximum() {
        let g = Gauge::new();
        g.set_max(2.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.0);
        g.set(0.5);
        assert_eq!(g.get(), 0.5);
    }
}
