//! The process-global metrics registry: interned name → metric handle.
//!
//! Registration takes a `Mutex` once per *name*; the returned handle is a
//! leaked `&'static` reference, so steady-state updates never touch the
//! lock. The [`counter!`](crate::counter)/[`gauge!`](crate::gauge)/
//! [`histogram!`](crate::histogram) macros additionally cache the handle in
//! a per-callsite `OnceLock`, making even the name lookup a one-time cost.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, HistSnapshot, Histogram};

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Name → metric map. One per process, via [`registry`].
pub struct Registry {
    map: Mutex<BTreeMap<&'static str, Metric>>,
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        map: Mutex::new(BTreeMap::new()),
    })
}

impl Registry {
    /// Returns the counter registered under `name`, creating (and leaking)
    /// it on first use. Panics if `name` is already registered as a
    /// different metric kind — a naming-convention bug worth failing loud.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(m) = map.get(name) {
            match m {
                Metric::Counter(c) => return c,
                _ => panic!("obs: {name:?} already registered as a non-counter"),
            }
        }
        let handle: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(leak_name(name), Metric::Counter(handle));
        handle
    }

    /// Counterpart of [`Registry::counter`] for gauges.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(m) = map.get(name) {
            match m {
                Metric::Gauge(g) => return g,
                _ => panic!("obs: {name:?} already registered as a non-gauge"),
            }
        }
        let handle: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        map.insert(leak_name(name), Metric::Gauge(handle));
        handle
    }

    /// Counterpart of [`Registry::counter`] for histograms.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        self.histogram_named(name).1
    }

    /// Like [`Registry::histogram`], but also returns the interned
    /// `&'static` copy of the name — what `span_dyn` stores in the guard.
    pub fn histogram_named(&self, name: &str) -> (&'static str, &'static Histogram) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((k, m)) = map.get_key_value(name) {
            match m {
                Metric::Histogram(h) => return (k, h),
                _ => panic!("obs: {name:?} already registered as a non-histogram"),
            }
        }
        let handle: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        let key = leak_name(name);
        map.insert(key, Metric::Histogram(handle));
        (key, handle)
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .filter_map(|(n, m)| match m {
                Metric::Counter(c) => Some((*n, c.get())),
                _ => None,
            })
            .collect()
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .filter_map(|(n, m)| match m {
                Metric::Gauge(g) => Some((*n, g.get())),
                _ => None,
            })
            .collect()
    }

    /// Snapshots of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(&'static str, HistSnapshot)> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .filter_map(|(n, m)| match m {
                Metric::Histogram(h) => Some((*n, h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Cheap per-histogram `(count, sum)` totals, sorted by name — the raw
    /// material for [`span_delta`]-style per-batch breakdowns without
    /// copying full bucket arrays.
    pub fn span_totals(&self) -> Vec<SpanStat> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .filter_map(|(n, m)| match m {
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    Some(SpanStat {
                        name: n,
                        count: s.count(),
                        total_ns: s.sum,
                    })
                }
                _ => None,
            })
            .collect()
    }
}

fn leak_name(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

/// Aggregate of one named span (histogram) over some window: how many
/// times it fired and the summed recorded value (nanoseconds for wall-time
/// spans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStat {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
}

/// Difference `after − before` of two [`Registry::span_totals`] listings
/// (both sorted by name; `before` may be missing names that appeared
/// later). Entries with a zero count delta are dropped, as are `.cycles`
/// twins — the result is "which spans fired in this window, and for how
/// long", suitable for `ExecStats::spans`.
pub fn span_delta(before: &[SpanStat], after: &[SpanStat]) -> Vec<SpanStat> {
    let mut out = Vec::new();
    let mut bi = 0usize;
    for a in after {
        while bi < before.len() && before[bi].name < a.name {
            bi += 1;
        }
        let (count0, total0) = if bi < before.len() && before[bi].name == a.name {
            (before[bi].count, before[bi].total_ns)
        } else {
            (0, 0)
        };
        let count = a.count.saturating_sub(count0);
        if count > 0 && !a.name.ends_with(".cycles") {
            out.push(SpanStat {
                name: a.name,
                count,
                total_ns: a.total_ns.saturating_sub(total0),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_handle() {
        let a = registry().counter("test.registry.intern");
        let b = registry().counter("test.registry.intern");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        registry().gauge("test.registry.kind_clash");
        registry().counter("test.registry.kind_clash");
    }

    #[test]
    fn span_delta_merges_by_name() {
        let h1 = registry().histogram("test.registry.delta.a");
        let before = registry().span_totals();
        h1.record(10);
        h1.record(20);
        let h2 = registry().histogram("test.registry.delta.b");
        h2.record(5);
        registry()
            .histogram("test.registry.delta.b.cycles")
            .record(7);
        let after = registry().span_totals();
        let d = span_delta(&before, &after);
        let a = d
            .iter()
            .find(|s| s.name == "test.registry.delta.a")
            .unwrap();
        assert_eq!((a.count, a.total_ns), (2, 30));
        let b = d
            .iter()
            .find(|s| s.name == "test.registry.delta.b")
            .unwrap();
        assert_eq!((b.count, b.total_ns), (1, 5));
        assert!(!d.iter().any(|s| s.name.ends_with(".cycles")));
    }

    #[test]
    fn concurrent_counter_updates_land_exactly() {
        let c = registry().counter("test.registry.concurrent_counter");
        let start = c.get();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - start, threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_updates_land_exactly() {
        let h = registry().histogram("test.registry.concurrent_hist");
        let before = h.snapshot();
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        let d = h.snapshot().since(&before);
        assert_eq!(d.count(), threads * per_thread);
        let n = threads * per_thread;
        assert_eq!(d.sum, n * (n - 1) / 2);
    }

    #[test]
    fn snapshot_during_update_never_tears_quantiles() {
        let h = registry().histogram("test.registry.torn_quantiles");
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stop = &stop;
                s.spawn(move || {
                    let mut v = t + 1;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // SplitMix-style scramble: exercise many buckets.
                        v = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t);
                        h.record(v >> (v % 40));
                    }
                });
            }
            for _ in 0..2_000 {
                let s = h.snapshot();
                let (p50, p95, p99) = (s.quantile(0.50), s.quantile(0.95), s.quantile(0.99));
                assert!(p50 <= p95 && p95 <= p99, "torn: {p50} {p95} {p99}");
                // Both derive from the same bucket copy, so the tail
                // quantile can never exceed the observed maximum.
                assert!(s.count() == 0 || p99 <= s.max_value());
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}
