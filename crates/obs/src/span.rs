//! RAII span guards and the optional slowest-trace recorder.
//!
//! A [`Span`] times the region from construction to drop and records the
//! wall nanoseconds into a registry histogram (plus elapsed `rdtsc`
//! reference cycles into a `<name>.cycles` twin on x86_64). The
//! [`span!`](crate::span) macro caches both histogram handles per
//! callsite, so a span costs two `Instant::now()` calls and two relaxed
//! histogram records.
//!
//! Tracing is off by default. When [`trace::set_capacity`] arms it, any
//! thread can open a trace with [`trace::start`]; spans dropped while that
//! thread's trace is open append `(name, start, duration)` events to it,
//! and a process-global recorder keeps the K slowest completed traces for
//! [`trace::dump_json_lines`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::Histogram;
use crate::registry::registry;

/// Reads the CPU reference-cycle counter (`rdtsc`); `None` off x86_64.
/// Duplicated from `uncertain_bench::measure::cycle_counter` because the
/// dependency arrow points the other way (bench builds on obs).
#[inline]
pub fn cycles_now() -> Option<u64> {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `rdtsc` has no preconditions; baseline x86_64 includes it.
        Some(unsafe { core::arch::x86_64::_rdtsc() })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        None
    }
}

/// Whether [`cycles_now`] returns a real counter on this target.
#[inline]
pub fn has_cycle_counter() -> bool {
    cfg!(target_arch = "x86_64")
}

/// An in-flight timed region; records on drop. Construct via the
/// [`span!`](crate::span) macro (static name, cached handles) or
/// [`span_dyn`] (any name, registry lookup per call).
pub struct Span {
    name: &'static str,
    ns: &'static Histogram,
    cycles: Option<&'static Histogram>,
    t0: Instant,
    c0: Option<u64>,
    /// Start offset within the thread's open trace, if one is active.
    trace_start_ns: Option<u64>,
}

impl Span {
    /// Starts a span over pre-resolved histogram handles (what the macro
    /// expands to).
    pub fn with(
        name: &'static str,
        ns: &'static Histogram,
        cycles: Option<&'static Histogram>,
    ) -> Span {
        Span {
            name,
            ns,
            cycles,
            t0: Instant::now(),
            c0: cycles.and(cycles_now()),
            trace_start_ns: trace::offset_in_open_trace(),
        }
    }

    /// Name this span records under.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.t0.elapsed().as_nanos() as u64;
        self.ns.record(dur_ns);
        if let (Some(h), Some(c0), Some(c1)) = (self.cycles, self.c0, cycles_now()) {
            h.record(c1.saturating_sub(c0));
        }
        if let Some(start_ns) = self.trace_start_ns {
            trace::record_span(self.name, start_ns, dur_ns);
        }
    }
}

/// Starts a span under a name resolved through the registry on every call
/// (one mutex round-trip). Fine at batch/experiment granularity; use the
/// [`span!`](crate::span) macro on per-query paths.
pub fn span_dyn(name: &str) -> Span {
    let (interned, ns) = registry().histogram_named(name);
    let cycles = has_cycle_counter().then(|| registry().histogram(&format!("{name}.cycles")));
    Span::with(interned, ns, cycles)
}

pub mod trace {
    //! The K-slowest query-trace recorder.

    use super::*;

    /// How many slowest traces to keep; 0 = tracing disabled (default).
    static CAPACITY: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    }

    struct Active {
        label: &'static str,
        t0: Instant,
        events: Vec<SpanEvent>,
    }

    /// One completed span inside a trace, offsets relative to trace start.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SpanEvent {
        pub name: &'static str,
        pub start_ns: u64,
        pub dur_ns: u64,
    }

    /// One completed query trace.
    #[derive(Clone, Debug)]
    pub struct QueryTrace {
        pub label: &'static str,
        pub total_ns: u64,
        pub spans: Vec<SpanEvent>,
    }

    fn sink() -> &'static Mutex<Vec<QueryTrace>> {
        static SINK: OnceLock<Mutex<Vec<QueryTrace>>> = OnceLock::new();
        SINK.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Arms the recorder to keep the `k` slowest traces (0 disables and
    /// clears). Typically set once at process start / experiment setup.
    pub fn set_capacity(k: usize) {
        CAPACITY.store(k, Ordering::Relaxed);
        if k == 0 {
            clear();
        }
    }

    /// Current capacity (0 = disabled).
    pub fn capacity() -> usize {
        CAPACITY.load(Ordering::Relaxed)
    }

    /// Opens a trace on this thread. Returns `None` (no overhead beyond
    /// one atomic load) when tracing is disabled or the thread already has
    /// an open trace — nested traces are not recorded, their spans fold
    /// into the outer trace.
    pub fn start(label: &'static str) -> Option<TraceGuard> {
        if capacity() == 0 {
            return None;
        }
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if a.is_some() {
                return None;
            }
            *a = Some(Active {
                label,
                t0: Instant::now(),
                events: Vec::with_capacity(8),
            });
            Some(TraceGuard {
                _not_send: std::marker::PhantomData,
            })
        })
    }

    /// Nanoseconds since this thread's open trace started, if one is open.
    pub(super) fn offset_in_open_trace() -> Option<u64> {
        if capacity() == 0 {
            return None;
        }
        ACTIVE.with(|a| {
            a.borrow()
                .as_ref()
                .map(|t| t.t0.elapsed().as_nanos() as u64)
        })
    }

    /// Appends a completed span to this thread's open trace, if any.
    pub(super) fn record_span(name: &'static str, start_ns: u64, dur_ns: u64) {
        ACTIVE.with(|a| {
            if let Some(t) = a.borrow_mut().as_mut() {
                t.events.push(SpanEvent {
                    name,
                    start_ns,
                    dur_ns,
                });
            }
        });
    }

    /// Closes the trace when dropped and offers it to the K-slowest sink.
    pub struct TraceGuard {
        _not_send: std::marker::PhantomData<*const ()>,
    }

    impl Drop for TraceGuard {
        fn drop(&mut self) {
            let finished = ACTIVE.with(|a| a.borrow_mut().take());
            let Some(t) = finished else { return };
            let trace = QueryTrace {
                label: t.label,
                total_ns: t.t0.elapsed().as_nanos() as u64,
                spans: t.events,
            };
            let k = capacity();
            if k == 0 {
                return;
            }
            let mut sink = sink().lock().unwrap_or_else(|e| e.into_inner());
            if sink.len() < k {
                sink.push(trace);
            } else if let Some((i, min)) = sink
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.total_ns)
                .map(|(i, t)| (i, t.total_ns))
            {
                if trace.total_ns > min {
                    sink[i] = trace;
                }
            }
        }
    }

    /// The recorded slowest traces, slowest first.
    pub fn slowest() -> Vec<QueryTrace> {
        let mut out = sink().lock().unwrap_or_else(|e| e.into_inner()).clone();
        out.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        out
    }

    /// Drops every recorded trace (capacity unchanged).
    pub fn clear() {
        sink().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// The slowest traces as JSON lines, one trace per line:
    /// `{"schema":"obs-trace/v1","label":...,"total_ns":...,"spans":[...]}`.
    pub fn dump_json_lines() -> String {
        let mut out = String::new();
        for t in slowest() {
            out.push_str(&format!(
                "{{\"schema\":\"obs-trace/v1\",\"label\":\"{}\",\"total_ns\":{},\"spans\":[",
                t.label, t.total_ns
            ));
            for (i, e) in t.spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                    e.name, e.start_ns, e.dur_ns
                ));
            }
            out.push_str("]}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_named_histogram() {
        let before = registry().histogram("test.span.basic").snapshot();
        {
            let _s = crate::span!("test.span.basic");
            std::hint::black_box(0u64);
        }
        let d = registry()
            .histogram("test.span.basic")
            .snapshot()
            .since(&before);
        assert_eq!(d.count(), 1);
        if has_cycle_counter() {
            assert!(
                registry()
                    .histogram("test.span.basic.cycles")
                    .snapshot()
                    .count()
                    >= 1
            );
        }
    }

    #[test]
    fn trace_recorder_keeps_slowest() {
        trace::set_capacity(2);
        for sleep_us in [1u64, 900, 400, 700] {
            let _g = trace::start("test.trace");
            let _s = crate::span!("test.trace.work");
            let t0 = Instant::now();
            while t0.elapsed().as_micros() < sleep_us as u128 {
                std::hint::black_box(0u64);
            }
        }
        let slow = trace::slowest();
        assert_eq!(slow.len(), 2);
        assert!(slow[0].total_ns >= slow[1].total_ns);
        // The two slowest of the four runs were kept (≥ ~700µs and ~400µs).
        assert!(slow[1].total_ns >= 300_000, "kept {} ns", slow[1].total_ns);
        assert!(slow[0].spans.iter().any(|e| e.name == "test.trace.work"));
        let json = trace::dump_json_lines();
        assert_eq!(json.lines().count(), 2);
        assert!(json.starts_with("{\"schema\":\"obs-trace/v1\""));
        trace::set_capacity(0);
        assert!(trace::slowest().is_empty());
    }
}
