//! Branch-and-bound index over disks.
//!
//! This is the practical engine behind Theorem 3.1's two query stages for
//! uncertain points with disk supports `D_i = (c_i, r_i)`:
//!
//! 1. `Δ(q) = min_i (‖q − c_i‖ + r_i)` — the additively-weighted nearest
//!    "maximum distance" (the lower envelope `Δ` of Section 2.1);
//! 2. report every disk intersecting the disk `B(q, Δ(q))`, i.e. every `i`
//!    with `δ_i(q) = max(‖q − c_i‖ − r_i, 0) < Δ(q)` — by Lemma 2.1 exactly
//!    the set `NN≠0(q)`.
//!
//! The tree is a kd-tree over disk centers whose nodes carry the minimum and
//! maximum subtree radius, giving valid bounds for both query types.

use uncertain_geom::{Aabb, Circle, Point};

const LEAF_SIZE: usize = 8;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    min_r: f64,
    max_r: f64,
    start: u32,
    end: u32,
    left: u32,
    right: u32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A static branch-and-bound index over disks with `u32` payloads.
#[derive(Clone, Debug)]
pub struct DiskIndex {
    items: Vec<(Circle, u32)>,
    nodes: Vec<Node>,
}

impl DiskIndex {
    pub fn build(mut items: Vec<(Circle, u32)>) -> Self {
        let mut nodes = Vec::new();
        if !items.is_empty() {
            let n = items.len();
            Self::build_rec(&mut items, 0, n, &mut nodes);
        }
        DiskIndex { items, nodes }
    }

    /// Convenience: payloads are indices into `disks`.
    pub fn from_disks(disks: &[Circle]) -> Self {
        Self::build(
            disks
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u32))
                .collect(),
        )
    }

    fn build_rec(
        items: &mut [(Circle, u32)],
        start: usize,
        end: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let slice = &items[start..end];
        let bbox = Aabb::from_points(slice.iter().map(|&(c, _)| c.center));
        let min_r = slice
            .iter()
            .map(|&(c, _)| c.radius)
            .fold(f64::INFINITY, f64::min);
        let max_r = slice
            .iter()
            .map(|&(c, _)| c.radius)
            .fold(f64::NEG_INFINITY, f64::max);
        let id = nodes.len() as u32;
        nodes.push(Node {
            bbox,
            min_r,
            max_r,
            start: start as u32,
            end: end as u32,
            left: u32::MAX,
            right: u32::MAX,
        });
        if end - start > LEAF_SIZE {
            let mid = (start + end) / 2;
            if bbox.width() >= bbox.height() {
                items[start..end].select_nth_unstable_by(mid - start, |a, b| {
                    a.0.center.x.partial_cmp(&b.0.center.x).unwrap()
                });
            } else {
                items[start..end].select_nth_unstable_by(mid - start, |a, b| {
                    a.0.center.y.partial_cmp(&b.0.center.y).unwrap()
                });
            }
            let left = Self::build_rec(items, start, mid, nodes);
            let right = Self::build_rec(items, mid, end, nodes);
            nodes[id as usize].left = left;
            nodes[id as usize].right = right;
        }
        id
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `Δ(q) = min_i (‖q − c_i‖ + r_i)` and the attaining payload.
    pub fn min_max_dist(&self, q: Point) -> Option<(f64, u32)> {
        self.two_min_max_dist(q).map(|(d, id, _)| (d, id))
    }

    /// The two smallest `Δ_i(q)` values: `(best, best payload, second)`.
    /// `second` is `+∞` when the index holds a single disk. Needed because
    /// Lemma 2.1 compares `δ_i` against `min_{j≠i} Δ_j`, which differs from
    /// the global minimum exactly when `i` attains it.
    pub fn two_min_max_dist(&self, q: Point) -> Option<(f64, u32, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best = (f64::INFINITY, 0u32);
        let mut second = f64::INFINITY;
        self.min_rec(0, q, &mut best, &mut second);
        Some((best.0, best.1, second))
    }

    fn min_rec(&self, node: u32, q: Point, best: &mut (f64, u32), second: &mut f64) {
        let n = &self.nodes[node as usize];
        // Prune against the *second*-best: both minima must be exact.
        if n.bbox.dist_to_point(q) + n.min_r >= *second {
            return;
        }
        if n.is_leaf() {
            for &(c, id) in &self.items[n.start as usize..n.end as usize] {
                let d = c.max_dist(q);
                if d < best.0 {
                    *second = best.0;
                    *best = (d, id);
                } else if d < *second {
                    *second = d;
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.dist_to_point(q) + self.nodes[l as usize].min_r;
        let br = self.nodes[r as usize].bbox.dist_to_point(q) + self.nodes[r as usize].min_r;
        if bl <= br {
            self.min_rec(l, q, best, second);
            self.min_rec(r, q, best, second);
        } else {
            self.min_rec(r, q, best, second);
            self.min_rec(l, q, best, second);
        }
    }

    /// The `m` smallest `Δ_i(q)` values with payloads, sorted ascending
    /// (fewer when the index holds fewer disks). Generalizes
    /// [`two_min_max_dist`](Self::two_min_max_dist) for k-NN variants.
    pub fn k_min_max_dist(&self, q: Point, m: usize) -> Vec<(f64, u32)> {
        if self.is_empty() || m == 0 {
            return vec![];
        }
        // Max-heap of the best m candidates (worst on top).
        let mut heap: Vec<(f64, u32)> = Vec::with_capacity(m + 1);
        self.k_min_rec(0, q, m, &mut heap);
        heap.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        heap
    }

    fn k_min_rec(&self, node: u32, q: Point, m: usize, heap: &mut Vec<(f64, u32)>) {
        let n = &self.nodes[node as usize];
        let worst = if heap.len() < m {
            f64::INFINITY
        } else {
            heap.iter()
                .map(|&(d, _)| d)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        if n.bbox.dist_to_point(q) + n.min_r >= worst {
            return;
        }
        if n.is_leaf() {
            for &(c, id) in &self.items[n.start as usize..n.end as usize] {
                let d = c.max_dist(q);
                if heap.len() < m {
                    heap.push((d, id));
                } else {
                    // Replace the current worst if strictly better.
                    let (wi, &(wd, _)) = heap
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                        .unwrap();
                    if d < wd {
                        heap[wi] = (d, id);
                    }
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.dist_to_point(q) + self.nodes[l as usize].min_r;
        let br = self.nodes[r as usize].bbox.dist_to_point(q) + self.nodes[r as usize].min_r;
        if bl <= br {
            self.k_min_rec(l, q, m, heap);
            self.k_min_rec(r, q, m, heap);
        } else {
            self.k_min_rec(r, q, m, heap);
            self.k_min_rec(l, q, m, heap);
        }
    }

    /// Reports every disk with `δ_i(q) < bound`, i.e. whose closed disk
    /// intersects the *open* disk `B°(q, bound)`.
    pub fn for_each_with_min_dist_below<F: FnMut(&Circle, u32)>(
        &self,
        q: Point,
        bound: f64,
        mut f: F,
    ) {
        if self.is_empty() {
            return;
        }
        self.report_rec(0, q, bound, &mut f);
    }

    fn report_rec<F: FnMut(&Circle, u32)>(&self, node: u32, q: Point, bound: f64, f: &mut F) {
        let n = &self.nodes[node as usize];
        // δ_i(q) ≥ dist(q, bbox) − max_r for every disk below this node.
        if n.bbox.dist_to_point(q) - n.max_r >= bound {
            return;
        }
        if n.is_leaf() {
            for &(ref c, id) in &self.items[n.start as usize..n.end as usize] {
                if c.min_dist(q) < bound {
                    f(c, id);
                }
            }
            return;
        }
        self.report_rec(n.left, q, bound, f);
        self.report_rec(n.right, q, bound, f);
    }

    /// The `NN≠0(q)` query of Theorem 3.1: all payloads `i` with
    /// `δ_i(q) < min_{j≠i} Δ_j(q)` (Lemma 2.1).
    pub fn nonzero_nn(&self, q: Point) -> Vec<u32> {
        let Some((best, best_id, second)) = self.two_min_max_dist(q) else {
            return vec![];
        };
        let mut out = vec![];
        // Traverse with the looser bound; filter per item.
        self.for_each_with_min_dist_below(q, second.min(f64::MAX), |c, id| {
            let bound = if id == best_id { second } else { best };
            if c.min_dist(q) < bound {
                out.push(id);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_disks(n: usize, seed: u64) -> Vec<Circle> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                Circle::new(
                    Point::new(next() * 100.0 - 50.0, next() * 100.0 - 50.0),
                    next() * 5.0,
                )
            })
            .collect()
    }

    #[test]
    fn empty() {
        let t = DiskIndex::build(vec![]);
        assert!(t.min_max_dist(Point::new(0.0, 0.0)).is_none());
        assert!(t.nonzero_nn(Point::new(0.0, 0.0)).is_empty());
    }

    #[test]
    fn min_max_dist_matches_brute_force() {
        let disks = random_disks(300, 3);
        let t = DiskIndex::from_disks(&disks);
        let queries = random_disks(50, 17);
        for q in queries.iter().map(|c| c.center) {
            let brute = disks
                .iter()
                .map(|d| d.max_dist(q))
                .fold(f64::INFINITY, f64::min);
            let (got, id) = t.min_max_dist(q).unwrap();
            assert!((got - brute).abs() < 1e-12);
            assert!((disks[id as usize].max_dist(q) - brute).abs() < 1e-12);
        }
    }

    #[test]
    fn nonzero_nn_matches_brute_force() {
        let disks = random_disks(200, 7);
        let t = DiskIndex::from_disks(&disks);
        for q in random_disks(80, 23).iter().map(|c| c.center) {
            // Brute-force Lemma 2.1: δ_i < min_{j≠i} Δ_j.
            let mut brute: Vec<u32> = disks
                .iter()
                .enumerate()
                .filter(|&(i, d)| {
                    let thresh = disks
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, o)| o.max_dist(q))
                        .fold(f64::INFINITY, f64::min);
                    d.min_dist(q) < thresh
                })
                .map(|(i, _)| i as u32)
                .collect();
            let mut got = t.nonzero_nn(q);
            brute.sort_unstable();
            got.sort_unstable();
            assert_eq!(brute, got);
        }
    }

    #[test]
    fn k_min_matches_sorted_brute_force() {
        let disks = random_disks(150, 5);
        let t = DiskIndex::from_disks(&disks);
        for q in random_disks(30, 31).iter().map(|c| c.center) {
            let mut brute: Vec<f64> = disks.iter().map(|d| d.max_dist(q)).collect();
            brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for m in [1usize, 2, 5, 10, 200] {
                let got = t.k_min_max_dist(q, m);
                assert_eq!(got.len(), m.min(disks.len()));
                for (g, b) in got.iter().zip(&brute) {
                    assert!((g.0 - b).abs() < 1e-12, "m={m}");
                }
            }
        }
    }

    #[test]
    fn certain_point_reports_itself() {
        // A zero-radius disk attaining Δ(q) must still be reported — the
        // j ≠ i subtlety of Lemma 2.1.
        let disks = vec![
            Circle::new(Point::new(0.0, 0.0), 0.0),
            Circle::new(Point::new(10.0, 0.0), 0.0),
        ];
        let t = DiskIndex::from_disks(&disks);
        assert_eq!(t.nonzero_nn(Point::new(1.0, 0.0)), vec![0]);
        let single = DiskIndex::from_disks(&disks[..1]);
        assert_eq!(single.nonzero_nn(Point::new(5.0, 5.0)), vec![0]);
    }

    #[test]
    fn nonzero_nn_contains_the_delta_witness() {
        // The disk attaining Δ(q) always participates: δ_i(q) ≤ Δ_i(q) = Δ(q)
        // with strict inequality unless r_i = 0 and q = c_i.
        let disks = random_disks(100, 13);
        let t = DiskIndex::from_disks(&disks);
        let q = Point::new(1.0, 2.0);
        let (_, witness) = t.min_max_dist(q).unwrap();
        let nn = t.nonzero_nn(q);
        assert!(nn.contains(&witness));
    }

    #[test]
    fn query_point_inside_disk() {
        // A disk containing q has δ = 0 < Δ(q), so it is always reported.
        let disks = vec![
            Circle::new(Point::new(0.0, 0.0), 5.0),
            Circle::new(Point::new(100.0, 0.0), 1.0),
        ];
        let t = DiskIndex::from_disks(&disks);
        let nn = t.nonzero_nn(Point::new(1.0, 0.0));
        assert_eq!(nn, vec![0]);
    }
}
