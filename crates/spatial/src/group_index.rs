//! Branch-and-bound index over *groups* of points (discrete uncertain
//! points), summarized by their smallest enclosing circles.
//!
//! For a discrete uncertain point `P_i` with SEC `(c_i, rad_i)`:
//!
//! * `Δ_i(q) = max_j ‖q − p_ij‖ ≥ max(‖q − c_i‖, rad_i)` — the first term
//!   because the SEC center lies in the convex hull of `P_i` and the distance
//!   function is convex; the second by minimality of the SEC (any point,
//!   including `q`, has some `p_ij` at distance ≥ rad_i... more precisely the
//!   SEC radius lower-bounds the max distance from *any* center candidate);
//! * `Δ_i(q) ≤ ‖q − c_i‖ + rad_i` by the triangle inequality.
//!
//! [`GroupIndex::min_max_dist`] uses these bounds to find
//! `Δ(q) = min_i Δ_i(q)` while evaluating the exact `Δ_i` (via convex hulls)
//! for only a few candidate groups — the first stage of the Theorem 3.2
//! query.

use uncertain_geom::hull::FarthestPointHull;
use uncertain_geom::sec::smallest_enclosing_circle;
use uncertain_geom::{Aabb, Circle, Point};

const LEAF_SIZE: usize = 4;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    min_rad: f64,
    start: u32,
    end: u32,
    left: u32,
    right: u32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

#[derive(Clone, Debug)]
struct Group {
    sec: Circle,
    hull: FarthestPointHull,
    id: u32,
}

/// A static index over groups of points supporting fast
/// `min_i max_j ‖q − p_ij‖` queries.
///
/// Callers that overlay tombstones on the static tree (the Bentley–Saxe
/// dynamic layer) can additionally maintain a **live-count overlay** — one
/// counter per tree node, seeded by [`live_counts`](Self::live_counts) and
/// decremented along root-to-leaf paths by [`kill`](Self::kill) — so the
/// [pruned traversal](Self::two_min_max_dist_pruned) skips fully-dead
/// subtrees wholesale instead of filtering their groups one at a time.
/// Near the 50% compaction threshold that is the difference between paying
/// for the build-batch size and paying for the live population.
#[derive(Clone, Debug)]
pub struct GroupIndex {
    groups: Vec<Group>,
    nodes: Vec<Node>,
    /// Group id → position in `groups` (`u32::MAX` for skipped empty ids);
    /// the build permutes `groups`, this maps back.
    pos_of_id: Vec<u32>,
}

impl GroupIndex {
    /// Builds the index; `groups[i]` is the point set of group with id `i`.
    /// Empty groups are skipped.
    pub fn build(groups: &[Vec<Point>]) -> Self {
        let mut gs: Vec<Group> = groups
            .iter()
            .enumerate()
            .filter(|(_, pts)| !pts.is_empty())
            .map(|(i, pts)| Group {
                sec: smallest_enclosing_circle(pts).expect("non-empty"),
                hull: FarthestPointHull::build(pts),
                id: i as u32,
            })
            .collect();
        let mut nodes = Vec::new();
        if !gs.is_empty() {
            let n = gs.len();
            Self::build_rec(&mut gs, 0, n, &mut nodes);
        }
        let mut pos_of_id = vec![u32::MAX; groups.len()];
        for (pos, g) in gs.iter().enumerate() {
            pos_of_id[g.id as usize] = pos as u32;
        }
        GroupIndex {
            groups: gs,
            nodes,
            pos_of_id,
        }
    }

    fn build_rec(groups: &mut [Group], start: usize, end: usize, nodes: &mut Vec<Node>) -> u32 {
        let slice = &groups[start..end];
        let bbox = Aabb::from_points(slice.iter().map(|g| g.sec.center));
        let min_rad = slice
            .iter()
            .map(|g| g.sec.radius)
            .fold(f64::INFINITY, f64::min);
        let id = nodes.len() as u32;
        nodes.push(Node {
            bbox,
            min_rad,
            start: start as u32,
            end: end as u32,
            left: u32::MAX,
            right: u32::MAX,
        });
        if end - start > LEAF_SIZE {
            let mid = (start + end) / 2;
            if bbox.width() >= bbox.height() {
                groups[start..end].select_nth_unstable_by(mid - start, |a, b| {
                    a.sec.center.x.partial_cmp(&b.sec.center.x).unwrap()
                });
            } else {
                groups[start..end].select_nth_unstable_by(mid - start, |a, b| {
                    a.sec.center.y.partial_cmp(&b.sec.center.y).unwrap()
                });
            }
            let left = Self::build_rec(groups, start, mid, nodes);
            let right = Self::build_rec(groups, mid, end, nodes);
            nodes[id as usize].left = left;
            nodes[id as usize].right = right;
        }
        id
    }

    pub fn len(&self) -> usize {
        self.groups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// `Δ(q) = min_i Δ_i(q)` and the attaining group id.
    pub fn min_max_dist(&self, q: Point) -> Option<(f64, u32)> {
        self.two_min_max_dist(q).map(|(d, id, _)| (d, id))
    }

    /// The two smallest `Δ_i(q)` values: `(best, best group id, second)`;
    /// `second` is `+∞` with a single group (see Lemma 2.1's `j ≠ i`).
    pub fn two_min_max_dist(&self, q: Point) -> Option<(f64, u32, f64)> {
        self.two_min_max_dist_where(q, |_| true)
    }

    /// Like [`two_min_max_dist`](Self::two_min_max_dist), restricted to
    /// groups for which `live(id)` holds — the query primitive for callers
    /// that overlay tombstones on a static index (e.g. the Bentley–Saxe
    /// dynamic layer). Returns `None` when no live group exists; `second`
    /// is `+∞` with exactly one live group.
    pub fn two_min_max_dist_where(
        &self,
        q: Point,
        mut live: impl FnMut(u32) -> bool,
    ) -> Option<(f64, u32, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best = (f64::INFINITY, u32::MAX);
        let mut second = f64::INFINITY;
        self.min_rec(0, q, &mut live, None, &mut best, &mut second);
        if best.1 == u32::MAX {
            None
        } else {
            Some((best.0, best.1, second))
        }
    }

    /// A fresh live-count overlay: per-node subtree group counts with every
    /// group alive. Parallel to the internal node array; pass it (after
    /// [`kill`](Self::kill)s) to
    /// [`two_min_max_dist_pruned`](Self::two_min_max_dist_pruned).
    pub fn live_counts(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.end - n.start).collect()
    }

    /// Marks group `id` dead in a live-count overlay: decrements the
    /// counter of every node whose subtree contains the group. `O(log n)`
    /// (one root-to-leaf descent). Unknown/empty ids are ignored; killing
    /// the same id twice corrupts the overlay — callers gate on their own
    /// tombstone state, exactly as with the `live` predicate.
    pub fn kill(&self, id: u32, counts: &mut [u32]) {
        let Some(&pos) = self.pos_of_id.get(id as usize) else {
            return;
        };
        if pos == u32::MAX {
            return;
        }
        let mut node = 0u32;
        loop {
            let n = &self.nodes[node as usize];
            debug_assert!((n.start..n.end).contains(&pos));
            counts[node as usize] -= 1;
            if n.is_leaf() {
                break;
            }
            // The left child covers [start, mid); descend by position.
            let mid = self.nodes[n.left as usize].end;
            node = if pos < mid { n.left } else { n.right };
        }
    }

    /// Like [`two_min_max_dist_where`](Self::two_min_max_dist_where), with
    /// a live-count overlay that prunes fully-dead subtrees at node
    /// granularity. `counts` must be consistent with `live` (every killed
    /// group reports dead, and vice versa); answers are identical to the
    /// unpruned traversal — the overlay only skips work.
    pub fn two_min_max_dist_pruned(
        &self,
        q: Point,
        mut live: impl FnMut(u32) -> bool,
        counts: &[u32],
    ) -> Option<(f64, u32, f64)> {
        if self.is_empty() || counts.first().is_none_or(|&c| c == 0) {
            return None;
        }
        let mut best = (f64::INFINITY, u32::MAX);
        let mut second = f64::INFINITY;
        self.min_rec(0, q, &mut live, Some(counts), &mut best, &mut second);
        if best.1 == u32::MAX {
            None
        } else {
            Some((best.0, best.1, second))
        }
    }

    /// The `m` smallest `Δ_i(q)` values with group ids, sorted ascending.
    pub fn k_min_max_dist(&self, q: Point, m: usize) -> Vec<(f64, u32)> {
        if self.is_empty() || m == 0 {
            return vec![];
        }
        let mut heap: Vec<(f64, u32)> = Vec::with_capacity(m + 1);
        self.k_min_rec(0, q, m, &mut heap);
        heap.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        heap
    }

    fn k_min_rec(&self, node: u32, q: Point, m: usize, heap: &mut Vec<(f64, u32)>) {
        let n = &self.nodes[node as usize];
        let worst = if heap.len() < m {
            f64::INFINITY
        } else {
            heap.iter()
                .map(|&(d, _)| d)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        if n.bbox.dist_to_point(q).max(n.min_rad) >= worst {
            return;
        }
        if n.is_leaf() {
            for g in &self.groups[n.start as usize..n.end as usize] {
                let lb = q.dist(g.sec.center).max(g.sec.radius);
                let worst = if heap.len() < m {
                    f64::INFINITY
                } else {
                    heap.iter()
                        .map(|&(d, _)| d)
                        .fold(f64::NEG_INFINITY, f64::max)
                };
                if lb >= worst {
                    continue;
                }
                let d = g.hull.max_dist(q);
                if heap.len() < m {
                    heap.push((d, g.id));
                } else {
                    let (wi, &(wd, _)) = heap
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                        .unwrap();
                    if d < wd {
                        heap[wi] = (d, g.id);
                    }
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.dist_to_point(q);
        let br = self.nodes[r as usize].bbox.dist_to_point(q);
        if bl <= br {
            self.k_min_rec(l, q, m, heap);
            self.k_min_rec(r, q, m, heap);
        } else {
            self.k_min_rec(r, q, m, heap);
            self.k_min_rec(l, q, m, heap);
        }
    }

    fn min_rec(
        &self,
        node: u32,
        q: Point,
        live: &mut impl FnMut(u32) -> bool,
        counts: Option<&[u32]>,
        best: &mut (f64, u32),
        second: &mut f64,
    ) {
        let n = &self.nodes[node as usize];
        // Tombstone-aware pruning: a subtree with no live group left (the
        // caller's live-count overlay says so) is skipped wholesale.
        if counts.is_some_and(|c| c[node as usize] == 0) {
            return;
        }
        // Valid lower bound on Δ_i(q) for any group below this node:
        // Δ_i(q) ≥ max(‖q − c_i‖, rad_i) ≥ max(dist(q, bbox), min_rad).
        // Prune against the second-best so both minima stay exact.
        if n.bbox.dist_to_point(q).max(n.min_rad) >= *second {
            return;
        }
        if n.is_leaf() {
            for g in &self.groups[n.start as usize..n.end as usize] {
                if !live(g.id) {
                    continue;
                }
                // Per-group lower bound first (cheap), then exact hull scan.
                let lb = q.dist(g.sec.center).max(g.sec.radius);
                if lb >= *second {
                    continue;
                }
                let d = g.hull.max_dist(q);
                if d < best.0 {
                    *second = best.0;
                    *best = (d, g.id);
                } else if d < *second {
                    *second = d;
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.dist_to_point(q);
        let br = self.nodes[r as usize].bbox.dist_to_point(q);
        if bl <= br {
            self.min_rec(l, q, live, counts, best, second);
            self.min_rec(r, q, live, counts, best, second);
        } else {
            self.min_rec(r, q, live, counts, best, second);
            self.min_rec(l, q, live, counts, best, second);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_groups(n: usize, k: usize, seed: u64) -> Vec<Vec<Point>> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let cx = next() * 100.0 - 50.0;
                let cy = next() * 100.0 - 50.0;
                (0..k)
                    .map(|_| Point::new(cx + next() * 6.0 - 3.0, cy + next() * 6.0 - 3.0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty() {
        let idx = GroupIndex::build(&[]);
        assert!(idx.min_max_dist(Point::new(0.0, 0.0)).is_none());
        let idx2 = GroupIndex::build(&[vec![]]);
        assert!(idx2.is_empty());
    }

    #[test]
    fn matches_brute_force() {
        let groups = random_groups(120, 6, 9);
        let idx = GroupIndex::build(&groups);
        let mut state = 55u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 120.0 - 60.0
        };
        for _ in 0..60 {
            let q = Point::new(next(), next());
            let brute = groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|&p| q.dist(p))
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .fold(f64::INFINITY, f64::min);
            let (got, id) = idx.min_max_dist(q).unwrap();
            assert!((got - brute).abs() < 1e-9, "got {got}, brute {brute}");
            // The reported id actually attains the minimum.
            let attained = groups[id as usize]
                .iter()
                .map(|&p| q.dist(p))
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((attained - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn filtered_two_min_max_matches_filtered_brute() {
        let groups = random_groups(80, 5, 13);
        let idx = GroupIndex::build(&groups);
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for round in 0..40 {
            let q = Point::new(next() * 120.0 - 60.0, next() * 120.0 - 60.0);
            // A different live mask every round (~half the groups dead).
            let mask: Vec<bool> = (0..groups.len()).map(|i| (i + round) % 2 == 0).collect();
            let mut dists: Vec<(f64, u32)> = groups
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask[i])
                .map(|(i, g)| {
                    (
                        g.iter()
                            .map(|&p| q.dist(p))
                            .fold(f64::NEG_INFINITY, f64::max),
                        i as u32,
                    )
                })
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let (got_d, got_id, got_second) = idx
                .two_min_max_dist_where(q, |id| mask[id as usize])
                .unwrap();
            assert!(mask[got_id as usize], "reported a dead group");
            assert!((got_d - dists[0].0).abs() < 1e-9);
            assert!((got_second - dists[1].0).abs() < 1e-9);
        }
        // All dead → no answer; one live → second is +∞.
        let q = Point::new(0.0, 0.0);
        assert!(idx.two_min_max_dist_where(q, |_| false).is_none());
        let (_, only, second) = idx.two_min_max_dist_where(q, |id| id == 3).unwrap();
        assert_eq!(only, 3);
        assert!(second.is_infinite());
    }

    #[test]
    fn pruned_traversal_matches_unpruned_under_every_mask() {
        let groups = random_groups(90, 4, 21);
        let idx = GroupIndex::build(&groups);
        let mut state = 31u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        // Progressive kills: after each batch, the pruned and unpruned
        // filtered traversals must agree exactly (the overlay only skips
        // provably-dead subtrees, never changes an answer).
        let mut counts = idx.live_counts();
        assert_eq!(counts[0] as usize, idx.len());
        let mut dead = vec![false; groups.len()];
        for round in 0..30 {
            // Kill three more groups per round (until ~all dead).
            for _ in 0..3 {
                let id = (next() * groups.len() as f64) as usize % groups.len();
                if !dead[id] {
                    dead[id] = true;
                    idx.kill(id as u32, &mut counts);
                }
            }
            let live_total = dead.iter().filter(|&&d| !d).count();
            assert_eq!(counts[0] as usize, live_total, "root count off");
            let q = Point::new(next() * 120.0 - 60.0, next() * 120.0 - 60.0);
            let unpruned = idx.two_min_max_dist_where(q, |id| !dead[id as usize]);
            let pruned = idx.two_min_max_dist_pruned(q, |id| !dead[id as usize], &counts);
            match (unpruned, pruned) {
                (None, None) => assert_eq!(live_total, 0),
                (Some((d, id, s)), Some((pd, pid, ps))) => {
                    assert_eq!(d.to_bits(), pd.to_bits(), "round {round}");
                    assert_eq!(id, pid);
                    assert_eq!(s.to_bits(), ps.to_bits());
                }
                other => panic!("pruned/unpruned disagree: {other:?}"),
            }
        }
        // Kill the rest: the pruned query answers None straight from the
        // root counter.
        for (id, d) in dead.iter_mut().enumerate() {
            if !*d {
                *d = true;
                idx.kill(id as u32, &mut counts);
            }
        }
        assert_eq!(counts[0], 0);
        assert!(idx
            .two_min_max_dist_pruned(Point::new(0.0, 0.0), |_| false, &counts)
            .is_none());
        assert!(counts.iter().all(|&c| c == 0), "leaf counters must drain");
    }

    #[test]
    fn kill_ignores_empty_group_ids() {
        // Group 1 is empty and skipped by the build; killing it is a no-op
        // and the remaining groups keep exact answers.
        let groups = vec![
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![],
            vec![Point::new(5.0, 5.0)],
        ];
        let idx = GroupIndex::build(&groups);
        assert_eq!(idx.len(), 2);
        let mut counts = idx.live_counts();
        idx.kill(1, &mut counts); // empty id: ignored
        idx.kill(99, &mut counts); // out of range: ignored
        assert_eq!(counts[0], 2);
        let q = Point::new(0.0, 0.0);
        let (d, id, _) = idx.two_min_max_dist_pruned(q, |_| true, &counts).unwrap();
        assert_eq!(id, 0);
        assert!((d - 1.0).abs() < 1e-12);
        idx.kill(0, &mut counts);
        let (_, id, second) = idx
            .two_min_max_dist_pruned(q, |id| id == 2, &counts)
            .unwrap();
        assert_eq!(id, 2);
        assert!(second.is_infinite());
    }

    #[test]
    fn single_point_groups_degenerate_to_nearest() {
        // k = 1 turns Δ(q) into an ordinary nearest-point query.
        let groups: Vec<Vec<Point>> = (0..50)
            .map(|i| vec![Point::new(i as f64, (i * 7 % 13) as f64)])
            .collect();
        let idx = GroupIndex::build(&groups);
        let q = Point::new(20.3, 4.2);
        let brute = groups
            .iter()
            .map(|g| q.dist(g[0]))
            .fold(f64::INFINITY, f64::min);
        let (got, _) = idx.min_max_dist(q).unwrap();
        assert!((got - brute).abs() < 1e-12);
    }
}
