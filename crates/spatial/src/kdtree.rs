//! A 2-D kd-tree over points with `u32` payloads.
//!
//! Supports exact nearest-neighbor queries, lazy best-first incremental
//! k-nearest-neighbor iteration (the backend of the paper's spiral search,
//! Theorem 4.7), and circular range reporting (`O(√N + t)` worst case — the
//! classical kd-tree bound, which is the practical counterpart of the
//! partition-tree bound in Theorem 3.2).

use crate::soa::PointSlab;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use uncertain_geom::{Aabb, Point};

const LEAF_SIZE: usize = 8;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    /// Range of items (indices into `items`) covered by this node.
    start: u32,
    end: u32,
    /// Child node indices; `u32::MAX` for leaves.
    left: u32,
    right: u32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A static 2-D kd-tree.
///
/// ```
/// use uncertain_geom::Point;
/// use uncertain_spatial::KdTree;
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0), Point::new(9.0, 0.0)];
/// let tree = KdTree::from_points(&pts);
/// let (_, id, d) = tree.nearest(Point::new(6.0, 4.0)).unwrap();
/// assert_eq!(id, 1);
/// assert!((d - 2f64.sqrt()).abs() < 1e-12);
/// // Incremental k-NN: points stream out by increasing distance.
/// let order: Vec<u32> = tree.nearest_iter(Point::new(0.0, 0.0)).map(|(_, i, _)| i).collect();
/// assert_eq!(order, vec![0, 1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct KdTree {
    /// Leaf coordinates in structure-of-arrays layout, so leaf scans run on
    /// the chunked-lane distance kernels (`crate::soa`) instead of striding
    /// over `(Point, u32)` pairs.
    slab: PointSlab,
    /// Payloads, parallel to `slab`.
    ids: Vec<u32>,
    nodes: Vec<Node>,
}

impl KdTree {
    /// Builds a tree over `(point, payload)` pairs. `O(n log n)`.
    pub fn build(mut items: Vec<(Point, u32)>) -> Self {
        let mut nodes = Vec::with_capacity(2 * items.len() / LEAF_SIZE + 4);
        if !items.is_empty() {
            let n = items.len();
            Self::build_rec(&mut items, 0, n, &mut nodes);
        }
        // Transpose the partitioned AoS build buffer into the flat slabs the
        // query kernels scan.
        let slab = PointSlab::from_points(items.iter().map(|&(p, _)| p));
        let ids = items.iter().map(|&(_, id)| id).collect();
        KdTree { slab, ids, nodes }
    }

    /// Convenience: build from points with payload = index.
    pub fn from_points(points: &[Point]) -> Self {
        Self::build(
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u32))
                .collect(),
        )
    }

    fn build_rec(
        items: &mut [(Point, u32)],
        start: usize,
        end: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let bbox = Aabb::from_points(items[start..end].iter().map(|&(p, _)| p));
        let id = nodes.len() as u32;
        nodes.push(Node {
            bbox,
            start: start as u32,
            end: end as u32,
            left: u32::MAX,
            right: u32::MAX,
        });
        if end - start > LEAF_SIZE {
            let mid = (start + end) / 2;
            // Split on the wider dimension of the bounding box.
            if bbox.width() >= bbox.height() {
                items[start..end].select_nth_unstable_by(mid - start, |a, b| cmp_f(a.0.x, b.0.x));
            } else {
                items[start..end].select_nth_unstable_by(mid - start, |a, b| cmp_f(a.0.y, b.0.y));
            }
            let left = Self::build_rec(items, start, mid, nodes);
            let right = Self::build_rec(items, mid, end, nodes);
            nodes[id as usize].left = left;
            nodes[id as usize].right = right;
        }
        id
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The nearest item to `q`: `(point, payload, distance)`.
    pub fn nearest(&self, q: Point) -> Option<(Point, u32, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: Option<(Point, u32, f64)> = None;
        self.nearest_rec(0, q, &mut best);
        best
    }

    fn nearest_rec(&self, node: u32, q: Point, best: &mut Option<(Point, u32, f64)>) {
        let n = &self.nodes[node as usize];
        if let Some((_, _, bd)) = best {
            if n.bbox.dist_to_point(q) >= *bd {
                return;
            }
        }
        if n.is_leaf() {
            let (start, end) = (n.start as usize, n.end as usize);
            let mut buf = [0.0f64; LEAF_SIZE];
            let dists = &mut buf[..end - start];
            self.slab.dist_range_into(start, end, q, dists);
            for (k, &d) in dists.iter().enumerate() {
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    *best = Some((self.slab.get(start + k), self.ids[start + k], d));
                }
            }
            return;
        }
        // Visit the nearer child first.
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.dist_to_point(q);
        let dr = self.nodes[r as usize].bbox.dist_to_point(q);
        if dl <= dr {
            self.nearest_rec(l, q, best);
            self.nearest_rec(r, q, best);
        } else {
            self.nearest_rec(r, q, best);
            self.nearest_rec(l, q, best);
        }
    }

    /// Reports every item within (closed) distance `r` of `q`.
    pub fn for_each_in_disk<F: FnMut(Point, u32)>(&self, q: Point, r: f64, mut f: F) {
        self.for_each_in_disk_with_dist(q, r, |p, id, _| f(p, id));
    }

    /// [`Self::for_each_in_disk`], also passing each hit's distance — the
    /// leaf kernel computes it anyway (bit-identical to `q.dist(p)`), so
    /// stage-2 style consumers that filter on the distance get it for free.
    pub fn for_each_in_disk_with_dist<F: FnMut(Point, u32, f64)>(
        &self,
        q: Point,
        r: f64,
        mut f: F,
    ) {
        if self.is_empty() {
            return;
        }
        self.range_rec(0, q, r, &mut f);
    }

    /// Collects payloads of items within distance `r` of `q`.
    pub fn in_disk(&self, q: Point, r: f64) -> Vec<u32> {
        let mut out = vec![];
        self.for_each_in_disk(q, r, |_, id| out.push(id));
        out
    }

    fn range_rec<F: FnMut(Point, u32, f64)>(&self, node: u32, q: Point, r: f64, f: &mut F) {
        let n = &self.nodes[node as usize];
        if n.bbox.dist_to_point(q) > r {
            return;
        }
        if n.is_leaf() {
            // Chunked-lane filter; hits come out in ascending index order,
            // exactly matching the scalar `q.dist(p) <= r` loop bit for bit.
            self.slab
                .for_each_in_disk_in_range(n.start as usize, n.end as usize, q, r, |i, d| {
                    f(self.slab.get(i), self.ids[i], d)
                });
            return;
        }
        self.range_rec(n.left, q, r, f);
        self.range_rec(n.right, q, r, f);
    }

    /// Lazy best-first iterator yielding items in non-decreasing distance
    /// from `q`. Amortized `O(log n)` per item; stop early for k-NN.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_> {
        let mut heap = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(HeapEntry {
                dist: self.nodes[0].bbox.dist_to_point(q),
                kind: EntryKind::Node(0),
            });
        }
        NearestIter {
            tree: self,
            q,
            heap,
        }
    }

    /// The `k` nearest items, sorted by distance.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(Point, u32, f64)> {
        self.nearest_iter(q).take(k).collect()
    }
}

#[inline]
fn cmp_f(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

#[derive(Clone, Copy, Debug)]
enum EntryKind {
    Node(u32),
    Item(u32),
}

#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    dist: f64,
    kind: EntryKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest distance first.
        cmp_f(other.dist, self.dist)
    }
}

/// See [`KdTree::nearest_iter`].
pub struct NearestIter<'a> {
    tree: &'a KdTree,
    q: Point,
    heap: BinaryHeap<HeapEntry>,
}

impl<'a> Iterator for NearestIter<'a> {
    type Item = (Point, u32, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(entry) = self.heap.pop() {
            match entry.kind {
                EntryKind::Item(idx) => {
                    let p = self.tree.slab.get(idx as usize);
                    let id = self.tree.ids[idx as usize];
                    return Some((p, id, entry.dist));
                }
                EntryKind::Node(nid) => {
                    let n = &self.tree.nodes[nid as usize];
                    if n.is_leaf() {
                        let (start, end) = (n.start as usize, n.end as usize);
                        let mut buf = [0.0f64; LEAF_SIZE];
                        let dists = &mut buf[..end - start];
                        self.tree.slab.dist_range_into(start, end, self.q, dists);
                        for (k, &d) in dists.iter().enumerate() {
                            self.heap.push(HeapEntry {
                                dist: d,
                                kind: EntryKind::Item((start + k) as u32),
                            });
                        }
                    } else {
                        for child in [n.left, n.right] {
                            let cb = &self.tree.nodes[child as usize];
                            self.heap.push(HeapEntry {
                                dist: cb.bbox.dist_to_point(self.q),
                                kind: EntryKind::Node(child),
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(vec![]);
        assert!(t.is_empty());
        assert!(t.nearest(Point::new(0.0, 0.0)).is_none());
        assert!(t.nearest_iter(Point::new(0.0, 0.0)).next().is_none());
        assert!(t.in_disk(Point::new(0.0, 0.0), 10.0).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(500, 11);
        let t = KdTree::from_points(&pts);
        for q in random_points(100, 77) {
            let (bi, bd) = pts
                .iter()
                .enumerate()
                .map(|(i, &p)| (i, q.dist(p)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            let (_, id, d) = t.nearest(q).unwrap();
            assert!((d - bd).abs() < 1e-12);
            // Distances tie extremely rarely; accept either index then.
            if (q.dist(pts[bi]) - q.dist(pts[id as usize])).abs() > 1e-12 {
                panic!("wrong nearest");
            }
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = random_points(400, 5);
        let t = KdTree::from_points(&pts);
        for (qi, q) in random_points(30, 99).into_iter().enumerate() {
            let r = 5.0 + (qi as f64) * 2.0;
            let mut brute: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, &p)| q.dist(p) <= r)
                .map(|(i, _)| i as u32)
                .collect();
            let mut got = t.in_disk(q, r);
            brute.sort_unstable();
            got.sort_unstable();
            assert_eq!(brute, got, "radius {r}");
        }
    }

    #[test]
    fn nearest_iter_is_sorted_and_complete() {
        let pts = random_points(300, 21);
        let t = KdTree::from_points(&pts);
        let q = Point::new(3.0, -7.0);
        let all: Vec<(Point, u32, f64)> = t.nearest_iter(q).collect();
        assert_eq!(all.len(), pts.len());
        for w in all.windows(2) {
            assert!(w[0].2 <= w[1].2 + 1e-12, "distances must be sorted");
        }
        // Every payload appears exactly once.
        let mut ids: Vec<u32> = all.iter().map(|&(_, id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), pts.len());
    }

    #[test]
    fn k_nearest_prefix_property() {
        let pts = random_points(200, 31);
        let t = KdTree::from_points(&pts);
        let q = Point::new(0.0, 0.0);
        let k10 = t.k_nearest(q, 10);
        let k5 = t.k_nearest(q, 5);
        assert_eq!(&k10[..5], &k5[..]);
        let mut dists: Vec<f64> = pts.iter().map(|&p| q.dist(p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, &(_, _, d)) in k10.iter().enumerate() {
            assert!((d - dists[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_points_are_retained() {
        let p = Point::new(1.0, 1.0);
        let t = KdTree::build(vec![(p, 0), (p, 1), (p, 2)]);
        let got = t.in_disk(p, 0.0);
        assert_eq!(got.len(), 3);
    }
}
