//! `uncertain-spatial`: spatial indexes backing the paper's query structures.
//!
//! The paper's near-linear `NN≠0` structures (Theorems 3.1 and 3.2) and the
//! spiral-search quantification algorithm (Theorem 4.7) need three query
//! primitives, all provided here:
//!
//! * [`kdtree::KdTree`] — points: nearest neighbor, best-first incremental
//!   k-nearest-neighbor iteration, and circular range reporting (the
//!   practical stand-in for partition-tree range searching, with the same
//!   `O(√N + t)` worst-case query shape).
//! * [`disk_index::DiskIndex`] — disks: `Δ(q) = min_i (‖q − c_i‖ + r_i)` by
//!   branch-and-bound, and "report all disks intersecting a query disk"
//!   (the two stages of the Theorem 3.1 query).
//! * [`group_index::GroupIndex`] — grouped point sets summarized by their
//!   smallest enclosing circles: `Δ(q) = min_i max_j ‖q − p_ij‖` by
//!   branch-and-bound with exact refinement (the first stage of the
//!   Theorem 3.2 query).
//!
//! The distance evaluations inside those primitives run on the
//! structure-of-arrays kernels in [`soa`] — flat `x[]`/`y[]` slabs scanned in
//! fixed-width chunks with branch-free hit masks, bit-identical to the scalar
//! `Point::dist` loops they replace (see the module docs for the exactness
//! contract and the process-global [`soa::KernelStats`] counters).

pub mod disk_index;
pub mod group_index;
pub mod kdtree;
pub mod quadtree;
pub mod soa;

pub use disk_index::DiskIndex;
pub use group_index::GroupIndex;
pub use kdtree::KdTree;
pub use quadtree::QuadTree;
pub use soa::{KernelStats, PointSlab};
