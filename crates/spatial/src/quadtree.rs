//! A PR quadtree with best-first incremental k-nearest-neighbor iteration.
//!
//! The paper's Remark (ii) after Theorem 4.7 suggests exactly this as the
//! practical retrieval structure for spiral search: *"Alternatively, one may
//! use quad-trees and a branch-and-bound algorithm to retrieve m points of S
//! closest to q [Har11]."* Ablation A6 compares it against the kd-tree.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use uncertain_geom::{Aabb, Point};

const LEAF_SIZE: usize = 8;
const MAX_DEPTH: usize = 32;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    /// Children node indices (`u32::MAX` = leaf); quadrants in order
    /// SW, SE, NW, NE.
    children: [u32; 4],
    /// Leaf payload: indices into `items`.
    points: Vec<u32>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children[0] == u32::MAX
    }
}

/// A static point-region quadtree.
#[derive(Clone, Debug)]
pub struct QuadTree {
    items: Vec<(Point, u32)>,
    nodes: Vec<Node>,
}

impl QuadTree {
    /// Builds the tree over `(point, payload)` pairs.
    pub fn build(items: Vec<(Point, u32)>) -> Self {
        let mut nodes = vec![];
        if !items.is_empty() {
            // Root square: the bounding box squared up.
            let bbox = Aabb::from_points(items.iter().map(|&(p, _)| p));
            let side = bbox.width().max(bbox.height()).max(1e-12);
            let root_box =
                Aabb::from_corners(bbox.lo, Point::new(bbox.lo.x + side, bbox.lo.y + side));
            let all: Vec<u32> = (0..items.len() as u32).collect();
            nodes.push(Node {
                bbox: root_box,
                children: [u32::MAX; 4],
                points: all,
            });
            let mut tree = QuadTree { items, nodes };
            tree.split(0, 0);
            return tree;
        }
        QuadTree { items, nodes }
    }

    /// Convenience: payload = index.
    pub fn from_points(points: &[Point]) -> Self {
        Self::build(
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u32))
                .collect(),
        )
    }

    fn split(&mut self, node: usize, depth: usize) {
        if self.nodes[node].points.len() <= LEAF_SIZE || depth >= MAX_DEPTH {
            return;
        }
        let bbox = self.nodes[node].bbox;
        let c = bbox.center();
        let quads = [
            Aabb::from_corners(bbox.lo, c),
            Aabb::from_corners(Point::new(c.x, bbox.lo.y), Point::new(bbox.hi.x, c.y)),
            Aabb::from_corners(Point::new(bbox.lo.x, c.y), Point::new(c.x, bbox.hi.y)),
            Aabb::from_corners(c, bbox.hi),
        ];
        let pts = std::mem::take(&mut self.nodes[node].points);
        let mut buckets: [Vec<u32>; 4] = [vec![], vec![], vec![], vec![]];
        for idx in pts {
            let p = self.items[idx as usize].0;
            let q = match (p.x >= c.x, p.y >= c.y) {
                (false, false) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (true, true) => 3,
            };
            buckets[q].push(idx);
        }
        // All points in one bucket and at max depth pressure: the recursion
        // depth guard prevents infinite splitting of duplicates.
        for (q, bucket) in buckets.into_iter().enumerate() {
            let child = self.nodes.len() as u32;
            self.nodes.push(Node {
                bbox: quads[q],
                children: [u32::MAX; 4],
                points: bucket,
            });
            self.nodes[node].children[q] = child;
            self.split(child as usize, depth + 1);
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lazy best-first iterator yielding items in non-decreasing distance
    /// from `q` (same contract as `KdTree::nearest_iter`).
    pub fn nearest_iter(&self, q: Point) -> QuadNearestIter<'_> {
        let mut heap = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(Entry {
                dist: self.nodes[0].bbox.dist_to_point(q),
                kind: Kind::Node(0),
            });
        }
        QuadNearestIter {
            tree: self,
            q,
            heap,
        }
    }

    /// The `k` nearest items, sorted by distance.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(Point, u32, f64)> {
        self.nearest_iter(q).take(k).collect()
    }

    /// The nearest item.
    pub fn nearest(&self, q: Point) -> Option<(Point, u32, f64)> {
        self.nearest_iter(q).next()
    }
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    Node(u32),
    Item(u32),
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    dist: f64,
    kind: Kind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

/// See [`QuadTree::nearest_iter`].
pub struct QuadNearestIter<'a> {
    tree: &'a QuadTree,
    q: Point,
    heap: BinaryHeap<Entry>,
}

impl Iterator for QuadNearestIter<'_> {
    type Item = (Point, u32, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(e) = self.heap.pop() {
            match e.kind {
                Kind::Item(idx) => {
                    let (p, id) = self.tree.items[idx as usize];
                    return Some((p, id, e.dist));
                }
                Kind::Node(nid) => {
                    let n = &self.tree.nodes[nid as usize];
                    if n.is_leaf() {
                        for &idx in &n.points {
                            self.heap.push(Entry {
                                dist: self.q.dist(self.tree.items[idx as usize].0),
                                kind: Kind::Item(idx),
                            });
                        }
                    } else {
                        for &c in &n.children {
                            let cb = &self.tree.nodes[c as usize];
                            if cb.is_leaf() && cb.points.is_empty() {
                                continue;
                            }
                            self.heap.push(Entry {
                                dist: cb.bbox.dist_to_point(self.q),
                                kind: Kind::Node(c),
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn empty_and_single() {
        assert!(QuadTree::build(vec![])
            .nearest(Point::new(0.0, 0.0))
            .is_none());
        let t = QuadTree::from_points(&[Point::new(3.0, 4.0)]);
        let (_, id, d) = t.nearest(Point::new(0.0, 0.0)).unwrap();
        assert_eq!(id, 0);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(400, 3);
        let t = QuadTree::from_points(&pts);
        for q in random_points(100, 17) {
            let brute = pts.iter().map(|&p| q.dist(p)).fold(f64::INFINITY, f64::min);
            let (_, _, d) = t.nearest(q).unwrap();
            assert!((d - brute).abs() < 1e-12);
        }
    }

    #[test]
    fn iterator_is_sorted_and_complete() {
        let pts = random_points(300, 9);
        let t = QuadTree::from_points(&pts);
        let q = Point::new(1.0, -2.0);
        let all: Vec<(Point, u32, f64)> = t.nearest_iter(q).collect();
        assert_eq!(all.len(), pts.len());
        for w in all.windows(2) {
            assert!(w[0].2 <= w[1].2 + 1e-12);
        }
        let mut ids: Vec<u32> = all.iter().map(|&(_, i, _)| i).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), pts.len());
    }

    #[test]
    fn agrees_with_kdtree() {
        let pts = random_points(500, 21);
        let qt = QuadTree::from_points(&pts);
        let kd = crate::KdTree::from_points(&pts);
        for q in random_points(40, 33) {
            let a: Vec<f64> = qt.k_nearest(q, 12).iter().map(|&(_, _, d)| d).collect();
            let b: Vec<f64> = kd.k_nearest(q, 12).iter().map(|&(_, _, d)| d).collect();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "kd/quad disagree at {q}");
            }
        }
    }

    #[test]
    fn duplicate_points_bounded_depth() {
        // 100 identical points must not blow the recursion.
        let p = Point::new(1.0, 1.0);
        let t = QuadTree::build((0..100).map(|i| (p, i)).collect());
        let got = t.k_nearest(p, 100);
        assert_eq!(got.len(), 100);
    }
}
