//! Structure-of-arrays distance kernels with masked tombstone filtering.
//!
//! The two hot loops behind every query family — the Theorem 3.2 stage-2
//! range scan and the Eq. (2) sweep's distance-evaluation pass — spend their
//! time computing `‖q − p‖` over many points. Stored as an array of
//! `(Point, u32)` structs those loops defeat autovectorization (strided
//! loads, a payload dragged through every iteration, a branch per element).
//! This module provides the flat alternative:
//!
//! * [`PointSlab`] — parallel `x[]` / `y[]` coordinate arrays ("structure of
//!   arrays"), so a distance pass reads two contiguous f64 streams.
//! * Chunked-lane kernels ([`PointSlab::dist_range_into`],
//!   [`PointSlab::for_each_in_disk_in_range`],
//!   [`PointSlab::for_each_in_disk_masked`]) that process [`LANES`] points
//!   per step with branch-free hit masks. They are written in plain `std`
//!   Rust in the shape LLVM reliably autovectorizes (fixed-width inner
//!   loops over slices, no early exits, mask accumulation instead of
//!   per-element branches); `std::simd` is nightly-only and this workspace
//!   builds on stable, so no explicit-SIMD feature is wired up.
//!
//! # Exactness contract
//!
//! Every kernel evaluates the *same* per-element expression as
//! [`Point::dist`]: `dx = qx − x; dy = qy − y; (dx·dx + dy·dy).sqrt()`.
//! IEEE 754 arithmetic is deterministic per element and the kernels never
//! reassociate across elements (no horizontal sums), so chunked and scalar
//! evaluation produce **bit-identical** distances, and `d <= r` filtering
//! admits exactly the same index sets in the same (ascending-index) order.
//! Only this f64 filter phase is vectorized — ordering and comparison
//! *decisions* downstream stay on the adaptive exact predicates
//! (`uncertain_geom::predicates`), so the refactor cannot change any answer.
//!
//! Each chunked kernel has a `_scalar` reference twin (the naive
//! branch-per-element loop) used by the differential tests and the kernel
//! benches; both sides tally into the process-global [`KernelStats`]
//! counters so `ExecStats` can report what fraction of distance work ran
//! through the lane kernels.

use uncertain_geom::Point;

/// Chunk width of the lane kernels, in f64 elements.
///
/// Four doubles = one AVX2 register (or two SSE2 / NEON registers); LLVM
/// turns the fixed-width inner loops into packed `sub/mul/add/sqrt` at every
/// x86-64 baseline this workspace targets. The value is a compile-time
/// constant so the remainder loop is at most `LANES - 1` elements.
pub const LANES: usize = 4;

// ---------------------------------------------------------------------------
// Kernel statistics
// ---------------------------------------------------------------------------

/// Registry handle for the lane-distance counter (resolved once; the
/// counters live in the `uncertain_obs` registry so they share the
/// snapshot/export path with every other layer's metrics).
#[inline]
fn lane_dists_counter() -> &'static uncertain_obs::Counter {
    uncertain_obs::counter!("spatial.kernel.lane_dists")
}

/// Registry handle for the scalar-distance counter (resolved once).
#[inline]
fn scalar_dists_counter() -> &'static uncertain_obs::Counter {
    uncertain_obs::counter!("spatial.kernel.scalar_dists")
}

/// Cumulative counts of distance evaluations across every SoA kernel in the
/// process, split by path. Counters are monotone; diff two snapshots with
/// [`KernelStats::since`] to measure one workload (the same pattern as
/// `uncertain_geom::predicates::PredicateStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Distances evaluated inside full [`LANES`]-wide chunks.
    pub lane_dists: u64,
    /// Distances evaluated one at a time (chunk remainders and the
    /// `_scalar` reference kernels).
    pub scalar_dists: u64,
}

impl KernelStats {
    /// Total distance evaluations recorded.
    pub fn total(&self) -> u64 {
        self.lane_dists + self.scalar_dists
    }

    /// Fraction of evaluations that ran in full-width chunks; `0.0` when no
    /// evaluations ran (an empty window reports no lane work, not full
    /// coverage).
    pub fn lane_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.lane_dists as f64 / self.total() as f64
        }
    }

    /// Counts accumulated since the `earlier` snapshot (saturating, so a
    /// stale snapshot can never underflow).
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            lane_dists: self.lane_dists.saturating_sub(earlier.lane_dists),
            scalar_dists: self.scalar_dists.saturating_sub(earlier.scalar_dists),
        }
    }
}

/// Snapshot of the process-global kernel counters. Concurrent kernel calls
/// from other threads are included — diff snapshots around a single-threaded
/// region (or accept the aggregate) accordingly.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        lane_dists: lane_dists_counter().get(),
        scalar_dists: scalar_dists_counter().get(),
    }
}

/// Resets the global counters to zero (single-threaded harnesses only).
pub fn reset_kernel_stats() {
    lane_dists_counter().reset();
    scalar_dists_counter().reset();
}

#[inline]
fn record(lane: u64, scalar: u64) {
    if lane > 0 {
        lane_dists_counter().add(lane);
    }
    if scalar > 0 {
        scalar_dists_counter().add(scalar);
    }
}

/// The one distance expression every kernel (and [`Point::dist`]) computes.
#[inline(always)]
fn dist_xy(qx: f64, qy: f64, x: f64, y: f64) -> f64 {
    let dx = qx - x;
    let dy = qy - y;
    (dx * dx + dy * dy).sqrt()
}

/// Tests bit `i` of a `u64` bitmap (little-endian within each word:
/// index `i` lives at `bitmap[i >> 6]` bit `i & 63`).
#[inline(always)]
pub fn bitmap_get(bitmap: &[u64], i: usize) -> bool {
    bitmap[i >> 6] & (1u64 << (i & 63)) != 0
}

/// Allocates an all-`live` bitmap covering `n` indices (trailing bits of the
/// last word are zero so popcounts stay honest).
pub fn bitmap_filled(n: usize, live: bool) -> Vec<u64> {
    let words = n.div_ceil(64);
    let mut v = vec![if live { u64::MAX } else { 0 }; words];
    if live && !n.is_multiple_of(64) {
        if let Some(last) = v.last_mut() {
            *last = (1u64 << (n % 64)) - 1;
        }
    }
    v
}

// ---------------------------------------------------------------------------
// PointSlab
// ---------------------------------------------------------------------------

/// Flat structure-of-arrays point storage: `xs[i]`/`ys[i]` are the
/// coordinates of point `i`. Payloads (ids, weights, owners) live in
/// parallel arrays owned by the caller, keyed by the same index.
#[derive(Clone, Debug, Default)]
pub struct PointSlab {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PointSlab {
    pub fn new() -> Self {
        PointSlab::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        PointSlab {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let iter = points.into_iter();
        let mut slab = PointSlab::with_capacity(iter.size_hint().0);
        for p in iter {
            slab.push(p);
        }
        slab
    }

    #[inline]
    pub fn push(&mut self, p: Point) {
        self.xs.push(p.x);
        self.ys.push(p.y);
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
    }

    /// The point at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    // -- distance fill ------------------------------------------------------

    /// Writes `‖q − p_i‖` for `i ∈ [start, end)` into `out` (which must have
    /// length `end - start`). Chunked-lane evaluation; bit-identical to
    /// calling [`Point::dist`] per element.
    pub fn dist_range_into(&self, start: usize, end: usize, q: Point, out: &mut [f64]) {
        let xs = &self.xs[start..end];
        let ys = &self.ys[start..end];
        assert_eq!(out.len(), xs.len());
        let n = xs.len();
        let chunks = n / LANES;
        for c in 0..chunks {
            let base = c * LANES;
            // Fixed-width inner loop over contiguous slices: LLVM emits
            // packed sub/mul/add/sqrt here.
            for l in 0..LANES {
                out[base + l] = dist_xy(q.x, q.y, xs[base + l], ys[base + l]);
            }
        }
        for i in chunks * LANES..n {
            out[i] = dist_xy(q.x, q.y, xs[i], ys[i]);
        }
        record((chunks * LANES) as u64, (n - chunks * LANES) as u64);
    }

    /// [`Self::dist_range_into`] over the whole slab, resizing `out`.
    pub fn dist_all_into(&self, q: Point, out: &mut Vec<f64>) {
        out.resize(self.len(), 0.0);
        self.dist_range_into(0, self.len(), q, out);
    }

    /// Scalar reference for [`Self::dist_all_into`]: the naive per-element
    /// loop the chunked kernel must match bit for bit.
    pub fn dist_all_into_scalar(&self, q: Point, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.xs
                .iter()
                .zip(&self.ys)
                .map(|(&x, &y)| q.dist(Point::new(x, y))),
        );
        record(0, self.len() as u64);
    }

    // -- in-disk filtering --------------------------------------------------

    /// Calls `f(i, dist_i)` for every `i ∈ [start, end)` with
    /// `‖q − p_i‖ <= r`, in ascending index order. Distances are evaluated
    /// in chunks and hits extracted from a branch-free comparison mask.
    pub fn for_each_in_disk_in_range<F: FnMut(usize, f64)>(
        &self,
        start: usize,
        end: usize,
        q: Point,
        r: f64,
        mut f: F,
    ) {
        let xs = &self.xs[start..end];
        let ys = &self.ys[start..end];
        let n = xs.len();
        let chunks = n / LANES;
        for c in 0..chunks {
            let base = c * LANES;
            let mut d = [0.0f64; LANES];
            let mut mask = 0u32;
            for l in 0..LANES {
                d[l] = dist_xy(q.x, q.y, xs[base + l], ys[base + l]);
            }
            for (l, &dl) in d.iter().enumerate() {
                mask |= ((dl <= r) as u32) << l;
            }
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                f(start + base + l, d[l]);
            }
        }
        for i in chunks * LANES..n {
            let d = dist_xy(q.x, q.y, xs[i], ys[i]);
            if d <= r {
                f(start + i, d);
            }
        }
        record((chunks * LANES) as u64, (n - chunks * LANES) as u64);
    }

    /// Scalar reference for [`Self::for_each_in_disk_in_range`].
    pub fn for_each_in_disk_in_range_scalar<F: FnMut(usize, f64)>(
        &self,
        start: usize,
        end: usize,
        q: Point,
        r: f64,
        mut f: F,
    ) {
        for i in start..end {
            let d = q.dist(self.get(i));
            if d <= r {
                f(i, d);
            }
        }
        record(0, (end - start) as u64);
    }

    /// Calls `f(i, dist_i)` for every slab index `i` that is **alive** in the
    /// tombstone bitmap and within (closed) distance `r` of `q`, in
    /// ascending index order. The liveness test is folded into the hit mask
    /// with a bitwise AND — no per-entry branch — which is the tombstone
    /// filtering mode the dynamic (Bentley–Saxe) layer uses on its bucket
    /// slabs.
    ///
    /// `alive` must cover the slab: `alive.len() * 64 >= self.len()`, bit
    /// `i & 63` of word `i >> 6` set iff entry `i` is live.
    pub fn for_each_in_disk_masked<F: FnMut(usize, f64)>(
        &self,
        q: Point,
        r: f64,
        alive: &[u64],
        mut f: F,
    ) {
        let n = self.len();
        assert!(alive.len() * 64 >= n, "alive bitmap too short for slab");
        let xs = &self.xs[..n];
        let ys = &self.ys[..n];
        let chunks = n / LANES;
        for c in 0..chunks {
            let base = c * LANES;
            // `base` is a multiple of LANES (= 4), so the chunk never
            // straddles a 64-bit bitmap word.
            let live = (alive[base >> 6] >> (base & 63)) as u32;
            let mut d = [0.0f64; LANES];
            let mut mask = 0u32;
            for l in 0..LANES {
                d[l] = dist_xy(q.x, q.y, xs[base + l], ys[base + l]);
            }
            for (l, &dl) in d.iter().enumerate() {
                mask |= ((dl <= r) as u32 & (live >> l) & 1) << l;
            }
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                f(base + l, d[l]);
            }
        }
        for i in chunks * LANES..n {
            if bitmap_get(alive, i) {
                let d = dist_xy(q.x, q.y, xs[i], ys[i]);
                if d <= r {
                    f(i, d);
                }
            }
        }
        record((chunks * LANES) as u64, (n - chunks * LANES) as u64);
    }

    /// Scalar reference for [`Self::for_each_in_disk_masked`]: per-entry
    /// liveness branch, then the distance test.
    pub fn for_each_in_disk_masked_scalar<F: FnMut(usize, f64)>(
        &self,
        q: Point,
        r: f64,
        alive: &[u64],
        mut f: F,
    ) {
        let n = self.len();
        assert!(alive.len() * 64 >= n, "alive bitmap too short for slab");
        let mut scalar = 0u64;
        for i in 0..n {
            if bitmap_get(alive, i) {
                scalar += 1;
                let d = q.dist(self.get(i));
                if d <= r {
                    f(i, d);
                }
            }
        }
        record(0, scalar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab_of(n: usize, seed: u64) -> PointSlab {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
        };
        PointSlab::from_points((0..n).map(|_| Point::new(next(), next())))
    }

    #[test]
    fn dist_kernels_bit_identical_to_point_dist() {
        for n in [0, 1, 3, 4, 7, 8, 64, 257] {
            let slab = slab_of(n, 42);
            let q = Point::new(3.25, -11.5);
            let mut lanes = vec![];
            let mut scalar = vec![];
            slab.dist_all_into(q, &mut lanes);
            slab.dist_all_into_scalar(q, &mut scalar);
            assert_eq!(lanes.len(), n);
            for i in 0..n {
                assert_eq!(
                    lanes[i].to_bits(),
                    scalar[i].to_bits(),
                    "n={n} i={i}: lane kernel diverged from Point::dist"
                );
            }
        }
    }

    #[test]
    fn in_disk_matches_scalar_including_order() {
        for n in [1, 5, 16, 100, 131] {
            let slab = slab_of(n, 7);
            let q = Point::new(0.0, 0.0);
            for r in [0.0, 10.0, 45.0, 1e9] {
                let mut a = vec![];
                let mut b = vec![];
                slab.for_each_in_disk_in_range(0, n, q, r, |i, d| a.push((i, d.to_bits())));
                slab.for_each_in_disk_in_range_scalar(0, n, q, r, |i, d| b.push((i, d.to_bits())));
                assert_eq!(a, b, "n={n} r={r}");
            }
        }
    }

    #[test]
    fn masked_filter_matches_scalar_across_mask_shapes() {
        let n = 203;
        let slab = slab_of(n, 99);
        let q = Point::new(5.0, 5.0);
        let r = 40.0;
        let all = bitmap_filled(n, true);
        let none = bitmap_filled(n, false);
        let mut alternating = bitmap_filled(n, false);
        for i in (0..n).step_by(2) {
            alternating[i >> 6] |= 1 << (i & 63);
        }
        for (name, mask) in [("all", &all), ("none", &none), ("alt", &alternating)] {
            let mut a = vec![];
            let mut b = vec![];
            slab.for_each_in_disk_masked(q, r, mask, |i, d| a.push((i, d.to_bits())));
            slab.for_each_in_disk_masked_scalar(q, r, mask, |i, d| b.push((i, d.to_bits())));
            assert_eq!(a, b, "mask shape {name}");
            if name == "none" {
                assert!(a.is_empty());
            }
        }
    }

    #[test]
    fn dist_range_subranges() {
        let n = 37;
        let slab = slab_of(n, 3);
        let q = Point::new(-2.0, 8.0);
        let mut full = vec![];
        slab.dist_all_into(q, &mut full);
        for (s, e) in [(0, 0), (0, 5), (8, 16), (30, 37), (4, 37)] {
            let mut part = vec![0.0; e - s];
            slab.dist_range_into(s, e, q, &mut part);
            for (k, d) in part.iter().enumerate() {
                assert_eq!(d.to_bits(), full[s + k].to_bits());
            }
        }
    }

    #[test]
    fn bitmap_helpers() {
        let m = bitmap_filled(70, true);
        assert_eq!(m.len(), 2);
        assert!(bitmap_get(&m, 0) && bitmap_get(&m, 63) && bitmap_get(&m, 69));
        assert_eq!(m[1], (1 << 6) - 1, "trailing bits must stay clear");
        let z = bitmap_filled(70, false);
        assert!(!bitmap_get(&z, 69));
        assert_eq!(bitmap_filled(0, true).len(), 0);
        assert_eq!(bitmap_filled(64, true), vec![u64::MAX]);
    }

    #[test]
    fn stats_accumulate_by_path() {
        let before = kernel_stats();
        let slab = slab_of(10, 1);
        let mut out = vec![];
        slab.dist_all_into(Point::new(0.0, 0.0), &mut out);
        slab.dist_all_into_scalar(Point::new(0.0, 0.0), &mut out);
        let delta = kernel_stats().since(&before);
        // Chunked call: 8 lane + 2 remainder; scalar call: 10 scalar.
        assert_eq!(delta.lane_dists, 8);
        assert_eq!(delta.scalar_dists, 12);
        assert_eq!(delta.total(), 20);
        assert!(delta.lane_fraction() > 0.0 && delta.lane_fraction() < 1.0);
        // Empty window: no work means no lane coverage, not full coverage.
        assert_eq!(KernelStats::default().lane_fraction(), 0.0);
    }
}
