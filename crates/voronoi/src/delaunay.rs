//! Incremental (Bowyer–Watson) Delaunay triangulation.

use std::collections::HashMap;
use uncertain_geom::predicates::{cmp_dist, incircle, orient2d};
use uncertain_geom::{Aabb, Point};

const NONE: u32 = u32::MAX;

/// A triangle: vertex ids (counter-clockwise) and the neighbor opposite each
/// vertex.
#[derive(Clone, Copy, Debug)]
struct Tri {
    v: [u32; 3],
    n: [u32; 3],
    alive: bool,
}

/// A Delaunay triangulation of a set of points.
///
/// Duplicate input points are merged (they receive the site id of their first
/// occurrence). Collinear inputs produce an empty triangle list but nearest-
/// site queries still work (via fallback scan).
///
/// ```
/// use uncertain_geom::Point;
/// use uncertain_voronoi::Delaunay;
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 4.0),
///     Point::new(4.0, 4.0),
/// ];
/// let dt = Delaunay::build(&pts);
/// assert_eq!(dt.triangles().len(), 2); // the square splits into 2 triangles
/// assert_eq!(dt.nearest_site(Point::new(3.5, 3.0)), Some(3));
/// ```
#[derive(Debug)]
pub struct Delaunay {
    /// All vertices; indices 0..3 are the synthetic super-triangle corners.
    verts: Vec<Point>,
    /// Map from vertex id (≥ 3) to the original input index.
    site_of_vert: Vec<u32>,
    tris: Vec<Tri>,
    /// For each original input index, the canonical vertex id (duplicates
    /// collapse onto the first occurrence).
    vert_of_site: Vec<u32>,
    /// Adjacency over *real* vertices (vertex id ≥ 3 → neighbor vertex ids),
    /// built once after construction; used for greedy nearest-site routing.
    adjacency: Vec<Vec<u32>>,
    /// Hint for locate() — a pure locality cache (relaxed atomic so a built
    /// triangulation is `Sync` and can be queried from many threads; a stale
    /// or torn hint only costs extra walk steps, never correctness).
    last_tri: std::sync::atomic::AtomicU32,
}

impl Clone for Delaunay {
    fn clone(&self) -> Self {
        Delaunay {
            verts: self.verts.clone(),
            site_of_vert: self.site_of_vert.clone(),
            tris: self.tris.clone(),
            vert_of_site: self.vert_of_site.clone(),
            adjacency: self.adjacency.clone(),
            last_tri: std::sync::atomic::AtomicU32::new(
                self.last_tri.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }
}

impl Delaunay {
    /// Builds the triangulation of `points`. `O(n log n)` expected for
    /// random insertion orders (points are inserted as given; callers with
    /// adversarial orders may shuffle first).
    pub fn build(points: &[Point]) -> Self {
        let bbox = Aabb::from_points(points.iter().copied());
        let (center, scale) = if bbox.is_empty() {
            (Point::new(0.0, 0.0), 1.0)
        } else {
            (bbox.center(), bbox.radius().max(1.0))
        };
        let d = 1e6 * scale;
        // Super-triangle large enough to contain everything comfortably.
        let sv = [
            Point::new(center.x - 2.0 * d, center.y - d),
            Point::new(center.x + 2.0 * d, center.y - d),
            Point::new(center.x, center.y + 2.0 * d),
        ];
        let mut dt = Delaunay {
            verts: sv.to_vec(),
            site_of_vert: vec![NONE, NONE, NONE],
            tris: vec![Tri {
                v: [0, 1, 2],
                n: [NONE, NONE, NONE],
                alive: true,
            }],
            vert_of_site: Vec::with_capacity(points.len()),
            adjacency: vec![],
            last_tri: std::sync::atomic::AtomicU32::new(0),
        };
        let mut seen: HashMap<(u64, u64), u32> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            let key = (p.x.to_bits(), p.y.to_bits());
            if let Some(&v) = seen.get(&key) {
                dt.vert_of_site.push(v);
                continue;
            }
            let v = dt.insert(p, i as u32);
            seen.insert(key, v);
            dt.vert_of_site.push(v);
        }
        dt.build_adjacency();
        dt
    }

    /// Number of real (deduplicated) vertices.
    pub fn num_vertices(&self) -> usize {
        self.verts.len() - 3
    }

    /// Triangles over original input indices (super-triangle faces removed).
    pub fn triangles(&self) -> Vec<[u32; 3]> {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v >= 3))
            .map(|t| {
                [
                    self.site_of_vert[t.v[0] as usize],
                    self.site_of_vert[t.v[1] as usize],
                    self.site_of_vert[t.v[2] as usize],
                ]
            })
            .collect()
    }

    /// The input index of the nearest site to `q` (ties broken arbitrarily).
    /// Exact: greedy routing over the Delaunay graph starting from the
    /// located triangle, with a brute-force fallback for degenerate inputs.
    /// All distance comparisons use the exact [`cmp_dist`] predicate, so the
    /// descent terminates at a true nearest neighbor even for queries
    /// exactly on Voronoi edges or vertices (where float distances tie only
    /// approximately).
    pub fn nearest_site(&self, q: Point) -> Option<u32> {
        if self.vert_of_site.is_empty() {
            return None;
        }
        let nearer =
            |a: &u32, b: &u32| cmp_dist(q, self.verts[*a as usize], self.verts[*b as usize]);
        // Degenerate (no real triangles): linear scan.
        let start = if self.adjacency.is_empty() {
            None
        } else {
            self.locate(q).and_then(|t| {
                self.tris[t as usize]
                    .v
                    .iter()
                    .copied()
                    .filter(|&v| v >= 3)
                    .min_by(|a, b| nearer(a, b))
            })
        };
        let mut best = match start {
            Some(v) => v,
            None => {
                // Fallback: brute force over all real vertices.
                return (3..self.verts.len() as u32)
                    .min_by(|a, b| nearer(a, b))
                    .map(|v| self.site_of_vert[v as usize]);
            }
        };
        // Greedy descent on the Delaunay graph terminates at the true
        // nearest neighbor (classical property of Delaunay triangulations —
        // which needs exact comparisons to hold on cocircular inputs).
        loop {
            let mut improved = false;
            for &u in &self.adjacency[best as usize - 3] {
                if cmp_dist(q, self.verts[u as usize], self.verts[best as usize])
                    == std::cmp::Ordering::Less
                {
                    best = u;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        Some(self.site_of_vert[best as usize])
    }

    /// Delaunay neighbor input-indices of site `site` (for Voronoi cells).
    pub fn neighbors_of_site(&self, site: usize) -> Vec<u32> {
        let v = self.vert_of_site[site];
        if v < 3 || self.adjacency.is_empty() {
            return vec![];
        }
        self.adjacency[v as usize - 3]
            .iter()
            .filter(|&&u| u >= 3)
            .map(|&u| self.site_of_vert[u as usize])
            .collect()
    }

    /// `true` when `site`'s Voronoi cell is unbounded (it sees a
    /// super-triangle vertex, i.e. it is on the convex hull).
    pub fn site_on_hull(&self, site: usize) -> bool {
        let v = self.vert_of_site[site];
        if self.adjacency.is_empty() {
            return true;
        }
        self.adjacency[v as usize - 3].iter().any(|&u| u < 3)
    }

    /// Point of the canonical vertex for input index `site`.
    pub fn site_point(&self, site: usize) -> Point {
        self.verts[self.vert_of_site[site] as usize]
    }

    /// The canonical input index for `site` (differs from `site` only when
    /// the input contained duplicate points).
    pub fn canonical_site(&self, site: usize) -> u32 {
        self.site_of_vert[self.vert_of_site[site] as usize]
    }

    // ------------------------------------------------------------------
    // construction internals
    // ------------------------------------------------------------------

    fn insert(&mut self, p: Point, site: u32) -> u32 {
        let vid = self.verts.len() as u32;
        self.verts.push(p);
        self.site_of_vert.push(site);

        let t0 = self
            .locate(p)
            .expect("point must fall inside the super-triangle");

        // Grow the cavity: triangles whose circumcircle strictly contains p.
        // The containing triangle is in the cavity unconditionally; when p
        // lies exactly on one of its edges, so is the neighbor across that
        // edge (otherwise retriangulation would create a zero-area triangle).
        let mut seeds: Vec<u32> = vec![t0];
        let t = self.tris[t0 as usize];
        for e in 0..3 {
            let a = self.verts[t.v[(e + 1) % 3] as usize];
            let b = self.verts[t.v[(e + 2) % 3] as usize];
            if orient2d(a, b, p) == 0.0 && t.n[e] != NONE {
                seeds.push(t.n[e]);
            }
        }
        let mut cavity: Vec<u32> = vec![];
        let mut in_cavity = vec![false; self.tris.len()];
        let mut stack = seeds.clone();
        while let Some(ti) = stack.pop() {
            if in_cavity[ti as usize] || !self.tris[ti as usize].alive {
                continue;
            }
            let tri = self.tris[ti as usize];
            let inside = seeds.contains(&ti) || {
                let a = self.verts[tri.v[0] as usize];
                let b = self.verts[tri.v[1] as usize];
                let c = self.verts[tri.v[2] as usize];
                incircle(a, b, c, p) > 0.0
            };
            if !inside {
                continue;
            }
            in_cavity[ti as usize] = true;
            cavity.push(ti);
            for e in 0..3 {
                let nb = self.tris[ti as usize].n[e];
                if nb != NONE && !in_cavity[nb as usize] {
                    stack.push(nb);
                }
            }
        }

        // Boundary edges of the cavity, directed so the cavity (hence p) is
        // on their left.
        let mut boundary: Vec<(u32, u32, u32)> = vec![]; // (a, b, outer-neighbor)
        for &ti in &cavity {
            let tri = self.tris[ti as usize];
            for e in 0..3 {
                let nb = tri.n[e];
                if nb == NONE || !in_cavity[nb as usize] {
                    let a = tri.v[(e + 1) % 3];
                    let b = tri.v[(e + 2) % 3];
                    boundary.push((a, b, nb));
                }
            }
        }
        for &ti in &cavity {
            self.tris[ti as usize].alive = false;
        }

        // Retriangulate the cavity: one new triangle per boundary edge.
        let mut edge_map: HashMap<(u32, u32), (u32, usize)> = HashMap::new();
        let first_new = self.tris.len() as u32;
        for &(a, b, outer) in &boundary {
            let nt = self.tris.len() as u32;
            self.tris.push(Tri {
                v: [a, b, vid],
                n: [NONE, NONE, outer],
                alive: true,
            });
            if outer != NONE {
                // Fix the outer triangle's back-pointer.
                let o = &mut self.tris[outer as usize];
                for e in 0..3 {
                    let oa = o.v[(e + 1) % 3];
                    let ob = o.v[(e + 2) % 3];
                    if (oa == b && ob == a) || (oa == a && ob == b) {
                        o.n[e] = nt;
                    }
                }
            }
            // Internal adjacency via shared edges (a, vid) and (b, vid).
            for (key, slot) in [
                ((a.min(vid), a.max(vid)), 1usize),
                ((b.min(vid), b.max(vid)), 0),
            ] {
                if let Some(&(ot, oslot)) = edge_map.get(&key) {
                    self.tris[nt as usize].n[slot] = ot;
                    self.tris[ot as usize].n[oslot] = nt;
                } else {
                    edge_map.insert(key, (nt, slot));
                }
            }
        }
        self.last_tri
            .store(first_new, std::sync::atomic::Ordering::Relaxed);
        vid
    }

    /// Walks to the triangle containing `p` (or on whose boundary `p` lies).
    fn locate(&self, p: Point) -> Option<u32> {
        let mut cur = self.last_tri.load(std::sync::atomic::Ordering::Relaxed);
        if cur as usize >= self.tris.len() || !self.tris[cur as usize].alive {
            cur = self.tris.iter().rposition(|t| t.alive)? as u32;
        }
        let mut steps = 0usize;
        let max_steps = 4 * self.tris.len() + 64;
        'walk: loop {
            steps += 1;
            if steps > max_steps {
                // Degenerate walk loop: fall back to linear scan.
                return self.locate_linear(p);
            }
            let tri = self.tris[cur as usize];
            for e in 0..3 {
                let a = self.verts[tri.v[(e + 1) % 3] as usize];
                let b = self.verts[tri.v[(e + 2) % 3] as usize];
                if orient2d(a, b, p) < 0.0 {
                    let nb = tri.n[e];
                    if nb == NONE {
                        return self.locate_linear(p);
                    }
                    cur = nb;
                    continue 'walk;
                }
            }
            self.last_tri
                .store(cur, std::sync::atomic::Ordering::Relaxed);
            return Some(cur);
        }
    }

    fn locate_linear(&self, p: Point) -> Option<u32> {
        for (i, t) in self.tris.iter().enumerate() {
            if !t.alive {
                continue;
            }
            let a = self.verts[t.v[0] as usize];
            let b = self.verts[t.v[1] as usize];
            let c = self.verts[t.v[2] as usize];
            if orient2d(a, b, p) >= 0.0 && orient2d(b, c, p) >= 0.0 && orient2d(c, a, p) >= 0.0 {
                return Some(i as u32);
            }
        }
        None
    }

    fn build_adjacency(&mut self) {
        let n_real = self.verts.len() - 3;
        let mut adj: Vec<Vec<u32>> = vec![vec![]; n_real];
        for t in &self.tris {
            if !t.alive {
                continue;
            }
            for e in 0..3 {
                let a = t.v[e];
                let b = t.v[(e + 1) % 3];
                if a >= 3 {
                    let list = &mut adj[a as usize - 3];
                    if !list.contains(&b) {
                        list.push(b);
                    }
                }
                if b >= 3 {
                    let list = &mut adj[b as usize - 3];
                    if !list.contains(&a) {
                        list.push(a);
                    }
                }
            }
        }
        self.adjacency = adj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * span - span / 2.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn empty_circumcircle_property() {
        let pts = random_points(120, 4242, 50.0);
        let dt = Delaunay::build(&pts);
        let tris = dt.triangles();
        assert!(!tris.is_empty());
        for t in &tris {
            let (a, b, c) = (pts[t[0] as usize], pts[t[1] as usize], pts[t[2] as usize]);
            // Ensure counter-clockwise for a signed incircle test.
            let (a, b, c) = if orient2d(a, b, c) > 0.0 {
                (a, b, c)
            } else {
                (a, c, b)
            };
            for (i, &p) in pts.iter().enumerate() {
                if t.contains(&(i as u32)) {
                    continue;
                }
                assert!(
                    incircle(a, b, c, p) <= 0.0,
                    "point {i} strictly inside circumcircle of {t:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_grid_terminates_and_is_delaunay() {
        // 6x6 integer grid: plenty of cocircular quadruples.
        let pts: Vec<Point> = (0..6)
            .flat_map(|i| (0..6).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let dt = Delaunay::build(&pts);
        let tris = dt.triangles();
        // A triangulation of a convex 36-point set with 20 hull points has
        // 2*36 - 2 - 20 = 50 triangles.
        assert_eq!(tris.len(), 50);
        for t in &tris {
            let (a, b, c) = (pts[t[0] as usize], pts[t[1] as usize], pts[t[2] as usize]);
            let (a, b, c) = if orient2d(a, b, c) > 0.0 {
                (a, b, c)
            } else {
                (a, c, b)
            };
            for (i, &p) in pts.iter().enumerate() {
                if t.contains(&(i as u32)) {
                    continue;
                }
                assert!(incircle(a, b, c, p) <= 0.0);
            }
        }
    }

    #[test]
    fn nearest_site_matches_brute_force() {
        let pts = random_points(200, 9, 40.0);
        let dt = Delaunay::build(&pts);
        for q in random_points(200, 77, 60.0) {
            let brute = pts
                .iter()
                .enumerate()
                .min_by(|a, b| q.dist(*a.1).partial_cmp(&q.dist(*b.1)).unwrap())
                .unwrap()
                .0;
            let got = dt.nearest_site(q).unwrap() as usize;
            assert!(
                (q.dist(pts[got]) - q.dist(pts[brute])).abs() < 1e-12,
                "q={q}: got {got} brute {brute}"
            );
        }
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 0.0), // duplicate of site 0
            Point::new(0.0, 1.0),
        ];
        let dt = Delaunay::build(&pts);
        assert_eq!(dt.num_vertices(), 3);
        let near = dt.nearest_site(Point::new(-0.1, -0.1)).unwrap();
        assert!(near == 0 || near == 2); // both map to the same location
    }

    #[test]
    fn collinear_inputs_fall_back() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let dt = Delaunay::build(&pts);
        assert!(dt.triangles().is_empty());
        assert_eq!(dt.nearest_site(Point::new(2.2, 1.0)).unwrap(), 2);
    }

    #[test]
    fn tiny_inputs() {
        assert!(Delaunay::build(&[])
            .nearest_site(Point::new(0.0, 0.0))
            .is_none());
        let one = Delaunay::build(&[Point::new(5.0, 5.0)]);
        assert_eq!(one.nearest_site(Point::new(0.0, 0.0)).unwrap(), 0);
        let two = Delaunay::build(&[Point::new(0.0, 0.0), Point::new(4.0, 0.0)]);
        assert_eq!(two.nearest_site(Point::new(3.0, 1.0)).unwrap(), 1);
    }

    #[test]
    fn neighbor_lists_are_symmetric() {
        let pts = random_points(60, 123, 30.0);
        let dt = Delaunay::build(&pts);
        for i in 0..pts.len() {
            for &j in &dt.neighbors_of_site(i) {
                assert!(
                    dt.neighbors_of_site(j as usize).contains(&(i as u32)),
                    "asymmetric adjacency {i} vs {j}"
                );
            }
        }
    }
}
