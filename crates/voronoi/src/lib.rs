//! `uncertain-voronoi`: Delaunay triangulation and Voronoi diagram substrate.
//!
//! The paper's Monte-Carlo quantification structure (Theorem 4.3) builds a
//! Voronoi diagram per sampled instantiation and answers queries by point
//! location; the nonzero Voronoi diagram machinery of Section 2 is also
//! phrased in terms of (additively weighted) Voronoi diagrams. This crate
//! provides:
//!
//! * [`delaunay::Delaunay`] — incremental Bowyer–Watson Delaunay
//!   triangulation with adaptive-precision predicates, point-location by
//!   walking, and exact nearest-site queries via greedy Delaunay routing;
//! * [`voronoi::VoronoiDiagram`] — Voronoi cells (clipped to a box) obtained
//!   from Delaunay adjacency by halfplane intersection.
//!
//! Implementation note: the triangulation uses a finite super-triangle placed
//! `~10⁶×` the data diameter away. With exact predicates this keeps the
//! empty-circumcircle property of every produced triangle exact; the only
//! theoretical artifact is that a sliver of the real hull may remain attached
//! to the super-vertices, which matters for none of the uses in this
//! workspace (and is cross-checked by brute-force tests).

pub mod delaunay;
pub mod voronoi;

pub use delaunay::Delaunay;
pub use voronoi::VoronoiDiagram;
