//! Voronoi diagrams (clipped to a bounding box).
//!
//! Cells are derived from Delaunay adjacency: the Voronoi cell of a site is
//! the intersection of the "closer-to-me" halfplanes against its Delaunay
//! neighbors — for Delaunay triangulations these neighbors are exactly the
//! sites contributing cell edges, so no other halfplanes are needed.

use crate::delaunay::Delaunay;
use uncertain_geom::halfplane::{intersect_halfplanes, Halfplane};
use uncertain_geom::polygon::signed_area;
use uncertain_geom::{Aabb, Point};

/// A Voronoi diagram of point sites, with every cell clipped to a box.
#[derive(Clone, Debug)]
pub struct VoronoiDiagram {
    sites: Vec<Point>,
    /// Clipped convex cell polygon per input site. Duplicate sites get the
    /// cell of their canonical representative (shared geometry).
    cells: Vec<Vec<Point>>,
    delaunay: Delaunay,
    bbox: Aabb,
}

impl VoronoiDiagram {
    /// Builds the diagram of `points`, clipping every cell to `bbox`.
    pub fn build(points: &[Point], bbox: &Aabb) -> Self {
        let delaunay = Delaunay::build(points);
        let mut cells: Vec<Vec<Point>> = vec![vec![]; points.len()];
        for i in 0..points.len() {
            let canon = delaunay.canonical_site(i) as usize;
            if canon != i {
                cells[i] = cells[canon].clone();
                continue;
            }
            let me = points[i];
            let planes: Vec<Halfplane> = delaunay
                .neighbors_of_site(i)
                .into_iter()
                .map(|j| Halfplane::closer_to(me, points[j as usize]))
                .collect();
            cells[i] = intersect_halfplanes(&planes, bbox);
        }
        VoronoiDiagram {
            sites: points.to_vec(),
            cells,
            delaunay,
            bbox: *bbox,
        }
    }

    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The clipped cell polygon of `site` (counter-clockwise; empty if the
    /// cell misses the box entirely).
    pub fn cell(&self, site: usize) -> &[Point] {
        &self.cells[site]
    }

    pub fn bbox(&self) -> &Aabb {
        &self.bbox
    }

    /// Nearest-site point location (the Voronoi cell containing `q`).
    pub fn locate(&self, q: Point) -> Option<u32> {
        self.delaunay.nearest_site(q)
    }

    /// Total area of all distinct cells (should equal the box area when
    /// sites are distinct — the cells partition the box).
    pub fn total_cell_area(&self) -> f64 {
        (0..self.sites.len())
            .filter(|&i| self.delaunay.canonical_site(i) as usize == i)
            .map(|i| signed_area(&self.cells[i]).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_geom::polygon::convex_contains;

    fn random_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * span - span / 2.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn cells_partition_the_box() {
        let pts = random_points(80, 31, 20.0);
        let bbox = Aabb::from_corners(Point::new(-15.0, -15.0), Point::new(15.0, 15.0));
        let vd = VoronoiDiagram::build(&pts, &bbox);
        let total = vd.total_cell_area();
        let box_area = bbox.width() * bbox.height();
        assert!(
            (total - box_area).abs() < 1e-6 * box_area,
            "cells cover {total}, box {box_area}"
        );
    }

    #[test]
    fn each_cell_contains_its_site() {
        let pts = random_points(60, 17, 20.0);
        let bbox = Aabb::from_corners(Point::new(-15.0, -15.0), Point::new(15.0, 15.0));
        let vd = VoronoiDiagram::build(&pts, &bbox);
        for (i, &p) in pts.iter().enumerate() {
            assert!(
                convex_contains(vd.cell(i), p),
                "site {i} at {p} escapes its cell"
            );
        }
    }

    #[test]
    fn cell_membership_matches_nearest_site() {
        let pts = random_points(40, 23, 20.0);
        let bbox = Aabb::from_corners(Point::new(-12.0, -12.0), Point::new(12.0, 12.0));
        let vd = VoronoiDiagram::build(&pts, &bbox);
        for q in random_points(100, 99, 22.0) {
            if !bbox.contains(q) {
                continue;
            }
            let site = vd.locate(q).unwrap() as usize;
            // q must be in the cell of its nearest site (strict interior may
            // fail on shared boundaries; allow containment in any tied cell).
            let dq = q.dist(pts[site]);
            let containing: Vec<usize> = (0..pts.len())
                .filter(|&i| convex_contains(vd.cell(i), q))
                .collect();
            assert!(!containing.is_empty(), "no cell contains {q}");
            for &i in &containing {
                assert!(
                    q.dist(pts[i]) - dq < 1e-9,
                    "cell {i} contains {q} but site is farther than nearest"
                );
            }
        }
    }

    #[test]
    fn duplicates_share_cells() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.0, 0.0),
        ];
        let bbox = Aabb::from_corners(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
        let vd = VoronoiDiagram::build(&pts, &bbox);
        assert_eq!(vd.cell(0), vd.cell(2));
        assert!((vd.total_cell_area() - 400.0).abs() < 1e-6);
    }
}
