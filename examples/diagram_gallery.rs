//! Renders nonzero Voronoi diagrams to SVG.
//!
//! ```text
//! cargo run --release --example diagram_gallery [-- OUTPUT_DIR]
//! ```
//!
//! Produces a small gallery (default `target/gallery/`):
//!
//! * `random.svg` — `V≠0` of a random disk set (the generic picture behind
//!   Figures 2–3 of the paper);
//! * `theorem_2_8.svg` — the equal-radius `Ω(n³)` construction (Figure 6);
//! * `theorem_2_10.svg` — the collinear disjoint family with its `Ω(n²)`
//!   grid of vertices (Figure 8);
//! * `corridor.svg` — overlapping disks along a corridor (curves vanish
//!   where disks may always tie).

use std::fs;
use std::path::PathBuf;
use uncertain_geom::{Circle, Point};
use uncertain_nn::svg::{render_guaranteed, render_vnz};
use uncertain_nn::vnz::{constructions, GuaranteedVoronoi, NonzeroVoronoiDiagram};
use uncertain_nn::workload;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/gallery".to_string())
        .into();
    fs::create_dir_all(&dir).expect("create output dir");

    let write = |name: &str, disks: Vec<Circle>| {
        let diagram = NonzeroVoronoiDiagram::build(disks);
        let c = diagram.complexity();
        let svg = render_vnz(&diagram, 64);
        let path = dir.join(name);
        fs::write(&path, svg).expect("write svg");
        println!(
            "{:>18}: n = {:3}  V = {:4}  E = {:4}  F = {:4}  → {}",
            name,
            diagram.disks().len(),
            c.vertices,
            c.edges,
            c.faces,
            path.display()
        );
    };

    write(
        "random.svg",
        workload::random_disk_set(14, 0.8, 2.5, 7).regions(),
    );
    write("theorem_2_8.svg", constructions::theorem_2_8(3).0);
    write("theorem_2_10.svg", constructions::theorem_2_10_lower(4).0);

    let corridor: Vec<Circle> = (0..8)
        .map(|i| {
            Circle::new(
                Point::new(3.0 * i as f64, if i % 2 == 0 { 0.0 } else { 1.0 }),
                1.6,
            )
        })
        .collect();
    write("corridor.svg", corridor);

    // Guaranteed (π = 1) regions of a sparse triangle of disks.
    let disks = vec![
        Circle::new(Point::new(0.0, 0.0), 1.0),
        Circle::new(Point::new(12.0, 0.0), 1.5),
        Circle::new(Point::new(6.0, 10.0), 0.8),
    ];
    let gv = GuaranteedVoronoi::build(&disks);
    let svg = render_guaranteed(&disks, &gv, 64);
    let path = dir.join("guaranteed.svg");
    fs::write(&path, svg).expect("write svg");
    println!(
        "{:>18}: n =   3  total boundary arcs = {:3}  → {}",
        "guaranteed.svg",
        gv.total_complexity(),
        path.display()
    );
}
