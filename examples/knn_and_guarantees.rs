//! k-NN, guaranteed regions, and high-level probabilistic queries.
//!
//! ```text
//! cargo run --release --example knn_and_guarantees
//! ```
//!
//! Demonstrates the extensions layered on the paper's core machinery:
//!
//! * `kNN≠0(q)` — which points can rank among the k nearest (Section 1.2's
//!   kNN variant, generalizing Lemma 2.1);
//! * the guaranteed Voronoi diagram ([SE08]) — where a single point is
//!   *surely* the nearest, i.e. `π_i(q) = 1`;
//! * expected-distance NN ([AESZ12]) vs most-probable NN — the paper's
//!   motivating divergence;
//! * threshold / top-k probable queries over any quantification engine.

use uncertain_geom::{Circle, Point};
use uncertain_nn::expected::{expected_vs_probable_divergence, ExpectedNnIndex};
use uncertain_nn::model::DiskSet;
use uncertain_nn::nonzero::DiskNonzeroIndex;
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::queries::{threshold_nn, top_k_probable, ExactQuantifier};
use uncertain_nn::vnz::GuaranteedVoronoi;
use uncertain_nn::workload;

fn main() {
    // --- kNN≠0 --------------------------------------------------------------
    let set: DiskSet = workload::random_disk_set(200, 0.3, 1.5, 42);
    let index = DiskNonzeroIndex::build(&set);
    let q = Point::new(3.0, -4.0);
    println!("kNN≠0(q) for growing k (candidates for the k nearest):");
    for k in [1usize, 2, 4, 8] {
        let mut c = index.query_k(q, k);
        c.sort_unstable();
        println!(
            "  k = {k}: {:2} candidates  {:?}...",
            c.len(),
            &c[..c.len().min(6)]
        );
    }

    // --- guaranteed regions --------------------------------------------------
    let disks = vec![
        Circle::new(Point::new(0.0, 0.0), 1.0),
        Circle::new(Point::new(12.0, 0.0), 1.0),
        Circle::new(Point::new(6.0, 10.0), 1.0),
    ];
    let gv = GuaranteedVoronoi::build(&disks);
    println!("\nguaranteed (π = 1) regions of three separated disks:");
    for q in [
        Point::new(0.0, 0.0),
        Point::new(12.0, 0.0),
        Point::new(6.0, 3.0),
    ] {
        match gv.locate(q) {
            Some(i) => println!("  {q}: surely nearest = P_{i}"),
            None => println!("  {q}: no certain winner (several candidates)"),
        }
    }
    println!(
        "  total guaranteed-boundary complexity: {} (O(n) per [SE08])",
        gv.total_complexity()
    );

    // --- expected vs probable -----------------------------------------------
    let (dset, dq) = expected_vs_probable_divergence();
    let e_idx = ExpectedNnIndex::build_discrete(&dset);
    let (we, ve) = e_idx.query(dq).unwrap();
    let pi = quantification_discrete(&dset, dq);
    println!("\nexpected-distance vs most-probable NN (the paper's motivation):");
    println!("  expected distance picks P_{we} (E = {ve:.2})");
    println!(
        "  probability picks P_1 (π = [{:.2}, {:.2}]) — they disagree!",
        pi[0], pi[1]
    );

    // --- threshold and top-k queries ----------------------------------------
    let tset = workload::random_discrete_set(12, 3, 8.0, 7);
    let engine = ExactQuantifier(&tset);
    let q = Point::new(0.0, 0.0);
    println!("\nthreshold query (π ≥ 0.1) at {q}:");
    for (i, p) in threshold_nn(&engine, q, 0.1) {
        println!("  P_{i:2}  π = {p:.3}");
    }
    println!("top-3 probable NNs at {q}:");
    for (i, p) in top_k_probable(&engine, q, 3) {
        println!("  P_{i:2}  π = {p:.3}");
    }
}
