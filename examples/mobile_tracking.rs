//! Mobile-object tracking with discrete location histograms.
//!
//! ```text
//! cargo run --release --example mobile_tracking
//! ```
//!
//! Moving objects report sporadic position fixes, so a tracker maintains a
//! *histogram* of likely current positions per object — exactly the paper's
//! discrete model (`k` weighted locations per uncertain point, cf. the
//! moving-object databases of [CKP04]). For a dispatcher query ("which taxi
//! is nearest to this passenger, and how sure are we?") this example
//! compares every quantification engine on one instance:
//!
//! * the exact Eq. (2) sweep,
//! * the probabilistic Voronoi diagram `V_Pr` (Theorem 4.2, exact,
//!   precomputed),
//! * Monte Carlo (Theorem 4.3),
//! * spiral search (Theorem 4.7),
//!
//! and prints the threshold report (`π_i ≥ τ`) the paper's introduction
//! motivates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::{Aabb, Point};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::{
    MonteCarloPnn, ProbabilisticVoronoiDiagram, SampleBackend, SpiralSearch,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // 6 taxis, each with a 3-bin location histogram along its recent route.
    let mut taxis = Vec::new();
    for _ in 0..6 {
        let base = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let locs: Vec<Point> = (0..3)
            .map(|s| {
                Point::new(
                    base.x + s as f64 * 1.5 * heading.cos(),
                    base.y + s as f64 * 1.5 * heading.sin(),
                )
            })
            .collect();
        // Recency-weighted histogram: newest fix most likely.
        taxis.push(DiscreteUncertainPoint::new(locs, vec![0.2, 0.3, 0.5]));
    }
    let fleet = DiscreteSet::new(taxis);
    println!(
        "fleet: {} taxis, {} candidate positions, spread ρ = {:.1}",
        fleet.len(),
        fleet.total_locations(),
        fleet.spread()
    );

    // Precompute the exact V_Pr structure for the downtown box.
    let bbox = Aabb::from_corners(Point::new(-20.0, -20.0), Point::new(20.0, 20.0));
    let vpr = ProbabilisticVoronoiDiagram::build(&fleet, &bbox);
    println!(
        "V_Pr: {} bisectors, {} cells, {} distinct probability vectors",
        vpr.num_bisectors(),
        vpr.num_cells(),
        vpr.num_distinct_vectors()
    );

    let mut rng2 = StdRng::seed_from_u64(5);
    let mc = MonteCarloPnn::build_discrete(&fleet, 4000, SampleBackend::KdTree, &mut rng2);
    let spiral = SpiralSearch::build(&fleet);

    let passenger = Point::new(1.0, 0.5);
    println!("\npassenger at {passenger}:");
    // Time each engine through the obs registry; the summary at the end
    // reads the spans back out of the process-global snapshot.
    let exact = {
        let _s = uncertain_obs::span_dyn("example.tracking.exact");
        quantification_discrete(&fleet, passenger)
    };
    let from_vpr = {
        let _s = uncertain_obs::span_dyn("example.tracking.vpr");
        dense(fleet.len(), &vpr.query(passenger))
    };
    let mc_est = {
        let _s = uncertain_obs::span_dyn("example.tracking.mc");
        mc.estimate_all(passenger)
    };
    let sp_est = {
        let _s = uncertain_obs::span_dyn("example.tracking.spiral");
        spiral.estimate_all(passenger, 0.01)
    };

    println!("  taxi |   exact |    V_Pr |      MC |  spiral");
    for i in 0..fleet.len() {
        println!(
            "   {i:3} | {:7.4} | {:7.4} | {:7.4} | {:7.4}",
            exact[i], from_vpr[i], mc_est[i], sp_est[i]
        );
        assert!((exact[i] - from_vpr[i]).abs() < 1e-6, "V_Pr must be exact");
        assert!((exact[i] - mc_est[i]).abs() < 0.05, "MC within ε");
        assert!(
            exact[i] - sp_est[i] <= 0.01 + 1e-9,
            "spiral within ε (one-sided)"
        );
    }

    // Threshold report: dispatch candidates with π ≥ τ.
    let tau = 0.15;
    let candidates: Vec<usize> = (0..fleet.len()).filter(|&i| exact[i] >= tau).collect();
    println!("\ndispatch candidates with P[nearest] ≥ {tau}: {candidates:?}");

    // Per-engine query timings, read back from the metrics registry.
    println!("\nper-engine query spans (obs registry):");
    for (name, h) in uncertain_obs::MetricsSnapshot::capture().histograms {
        if name.starts_with("example.tracking.") && !name.ends_with(".cycles") {
            println!("  {name:<26} {}", uncertain_obs::fmt_ns(h.quantile(0.50)));
        }
    }
}

fn dense(n: usize, sparse: &[(usize, f64)]) -> Vec<f64> {
    let mut v = vec![0.0; n];
    for &(i, p) in sparse {
        v[i] = p;
    }
    v
}
