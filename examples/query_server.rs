//! Query server: batched, concurrent serving with the `uncertain_engine`.
//!
//! ```text
//! cargo run --release --example query_server
//! UNC_ENGINE_THREADS=1 cargo run --release --example query_server
//! ```
//!
//! Simulates a small serving workload: a fleet of uncertain points, waves
//! of mixed request batches (nonzero / threshold / top-k), a repeated wave
//! that exercises the result cache, live churn absorbed through the
//! epoch/snapshot `apply()` layer, and a tighter-guarantee engine. After
//! every batch the engine reports its `ExecStats` one-liner: the plan the
//! cost-based planner took, the wall time, cache hit rate, worker
//! utilization, and the epoch + live site count the batch was served
//! under.
//!
//! After the waves, an interactive tail reads commands from stdin:
//! `stats` prints a live `obs/v1` metrics snapshot of the whole process
//! (per-layer span timings, planner counters, batch latency histograms),
//! `traces` dumps the slowest recorded query traces as JSON lines, and
//! `quit` (or EOF — piped runs fall straight through) exits. Setting
//! `UNC_OBS_FLUSH=<file>` additionally streams snapshots during the run.

use uncertain_engine::{Engine, EngineConfig, QueryRequest, QueryResult, Update};
use uncertain_geom::Point;
use uncertain_nn::model::DiscreteUncertainPoint;
use uncertain_nn::queries::Guarantee;
use uncertain_nn::workload;

fn describe(tag: &str, resp: &uncertain_engine::BatchResponse) {
    // The ExecStats Display impl is the canonical one-liner.
    println!("[{tag}] {}  built {:?}", resp.stats, resp.stats.built);
}

fn main() {
    // Stream obs/v1 snapshots when UNC_OBS_FLUSH is set, and keep the 5
    // slowest query traces for the `traces` command.
    let _flusher = uncertain_obs::Flusher::from_env();
    uncertain_obs::trace::set_capacity(5);
    // A fleet of 3000 uncertain points, 3 possible locations each.
    let set = workload::random_discrete_set(3000, 3, 5.0, 42);
    let engine = Engine::new(set.clone(), EngineConfig::default());
    println!(
        "serving n = {} uncertain points ({} locations) on {} worker(s)\n",
        set.len(),
        set.total_locations(),
        engine.threads()
    );

    // Wave 1: a mixed batch — the planner amortizes one index build.
    let queries = workload::random_queries(256, 60.0, 7);
    let mut wave1 = Vec::new();
    for &q in &queries {
        wave1.push(QueryRequest::Nonzero { q });
        wave1.push(QueryRequest::Threshold { q, tau: 0.3 });
        wave1.push(QueryRequest::TopK { q, k: 3 });
    }
    let resp = engine.run_batch(&wave1);
    describe("wave 1 cold", &resp);
    if let (QueryRequest::TopK { q, .. }, QueryResult::Ranked { items, guarantee }) =
        (&wave1[2], &resp.results[2])
    {
        println!(
            "         e.g. top-3 at {q}: {:?} under {:?}",
            items
                .iter()
                .map(|&(i, p)| (i, (p * 1000.0).round() / 1000.0))
                .collect::<Vec<_>>(),
            guarantee
        );
    }

    // Wave 2: the same batch again — served from the result cache.
    describe("wave 2 warm", &engine.run_batch(&wave1));

    // Wave 3: fresh queries — structures are already built (sunk cost).
    let wave3: Vec<QueryRequest> = workload::random_queries(512, 60.0, 8)
        .into_iter()
        .map(|q| QueryRequest::Nonzero { q })
        .collect();
    describe("wave 3 new ", &engine.run_batch(&wave3));

    // Wave 4: live churn — sites expire, arrive, and move through the
    // epoch/snapshot layer. Each apply() publishes a new epoch; the
    // Bentley–Saxe buckets absorb the updates without a full rebuild, and
    // the epoch-stamped cache retires the old epoch's entries for free.
    for round in 0..3 {
        let mut updates: Vec<Update> = (0..64).map(|i| Update::Remove(round * 64 + i)).collect();
        for i in 0..48 {
            let v = (round * 48 + i) as f64;
            updates.push(Update::Insert(DiscreteUncertainPoint::uniform(vec![
                Point::new((v * 1.7) % 50.0 - 25.0, (v * 2.9) % 50.0 - 25.0),
                Point::new((v * 3.1) % 50.0 - 25.0, (v * 0.7) % 50.0 - 25.0),
            ])));
        }
        for i in 0..16 {
            updates.push(Update::Move {
                id: 1000 + round * 16 + i,
                to: DiscreteUncertainPoint::certain(Point::new(
                    (i as f64 * 5.3) % 40.0 - 20.0,
                    (round as f64 * 7.1) % 40.0 - 20.0,
                )),
            });
        }
        let report = engine.apply(&updates);
        println!(
            "[churn {round}] epoch {} | +{} inserted, -{} removed, {} moved | {} live / {} tombstones | {} merges touching {} sites, {} global rebuilds",
            report.epoch,
            report.inserted.len(),
            report.removed,
            report.moved,
            report.live,
            report.tombstones,
            report.merges,
            report.sites_rebuilt,
            report.global_rebuilds,
        );
        describe("churn serve", &engine.run_batch(&wave3));
    }
    if let Some(stats) = engine.dynamic_stats() {
        println!(
            "         dynamic structure: {} buckets ({} indexed), amortized {:.1} sites rebuilt/update\n",
            stats.buckets,
            stats.indexed_buckets,
            stats.rebuild.amortized_rebuild_cost(),
        );
    }

    // A second engine serving ε-approximate answers: the planner switches
    // to the spiral-search quantifier for the same request shapes.
    let approx = Engine::new(
        set,
        EngineConfig {
            guarantee: Guarantee::Additive(0.05),
            ..EngineConfig::default()
        },
    );
    let wave4: Vec<QueryRequest> = workload::random_queries(256, 60.0, 9)
        .into_iter()
        .map(|q| QueryRequest::TopK { q, k: 1 })
        .collect();
    describe("approx ε=.05", &approx.run_batch(&wave4));
    println!("\ncost table of the last plan:");
    for e in &approx.run_batch(&wave4).stats.plan.estimates {
        println!(
            "  {}{:<22} build {:>12.0}  per-query {:>10.0}  total {:>12.0}",
            if e.chosen { "* " } else { "  " },
            e.name,
            e.build,
            e.per_query,
            e.total
        );
    }

    // Interactive tail: serve live observability on request. A piped or CI
    // run sees immediate EOF and exits; a terminal user can poll `stats`
    // while re-running waves in another pane is left as an exercise.
    println!("\ncommands: stats | traces | quit");
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        match line.trim() {
            "stats" => print!("{}", uncertain_obs::MetricsSnapshot::capture().dump()),
            "traces" => print!("{}", uncertain_obs::trace::dump_json_lines()),
            "quit" | "exit" => break,
            "" => {}
            other => println!("unknown command {other:?} (stats | traces | quit)"),
        }
    }
}
