//! Query server: the network serving front-end, exercised end to end.
//!
//! ```text
//! cargo run --release --example query_server                 # self-hosted
//! cargo run --release --example query_server -- --connect HOST:PORT
//! ```
//!
//! By default this self-hosts a [`uncertain_engine::server::Server`] over
//! an in-process engine on an ephemeral loopback port, then acts as a
//! *thin client* of it: everything — point-query waves, live churn
//! through `apply`, even the overload demonstration — travels through the
//! length-prefixed binary protocol, exactly as a remote client would.
//! With `--connect` it skips the self-hosting and talks to a `serve`
//! process you started elsewhere.
//!
//! The client is deliberately defensive: every reply variant is matched
//! (results, shed/error replies, pongs), nothing is indexed by position,
//! and a shed or failed reply is reported instead of crashing the client.

use std::sync::Arc;
use std::time::Duration;

use uncertain_engine::server::protocol::{Client, ErrorCode, Reply, Request};
use uncertain_engine::server::{Server, ServerConfig};
use uncertain_engine::{Engine, EngineConfig, QueryRequest, Update};
use uncertain_geom::Point;
use uncertain_nn::model::DiscreteUncertainPoint;
use uncertain_nn::workload;

fn main() {
    let _flusher = uncertain_obs::Flusher::from_env();
    let mut connect: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => connect = args.next(),
            other => {
                eprintln!("usage: query_server [--connect HOST:PORT]   (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    // Self-host unless pointed at an external server. The handle must
    // outlive the client traffic; dropping it shuts the server down.
    let mut hosted = None;
    let addr = match connect {
        Some(addr) => addr,
        None => {
            let set = workload::random_discrete_set(3000, 3, 5.0, 42);
            let engine = Arc::new(Engine::new(set, EngineConfig::default()));
            println!(
                "self-hosting: n = 3000 uncertain points on {} worker(s)",
                engine.threads()
            );
            let handle = Server::start(engine, ServerConfig::default()).expect("bind loopback");
            let addr = handle.local_addr().to_string();
            hosted = Some(handle);
            addr
        }
    };
    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap_or_else(|e| {
        eprintln!("query_server: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    println!("connected to {addr}\n");

    match client.call(&Request::Ping) {
        Ok(Reply::Pong) => println!("[ping] pong"),
        other => println!("[ping] unexpected: {other:?}"),
    }

    // Wave 1: a mixed wave — nonzero, threshold, and top-k per point.
    let queries = workload::random_queries(64, 60.0, 7);
    let mut wave: Vec<QueryRequest> = Vec::new();
    for &q in &queries {
        wave.push(QueryRequest::Nonzero { q });
        wave.push(QueryRequest::Threshold { q, tau: 0.3 });
        wave.push(QueryRequest::TopK { q, k: 3 });
    }
    run_wave(&mut client, "wave 1", &wave);

    // Show one concrete answer, defensively: find the first ranked reply
    // rather than assuming a response shape at a fixed index.
    if let Ok(Reply::Ranked { items, guarantee }) =
        client.call(&Request::Query(QueryRequest::TopK {
            q: queries[0],
            k: 3,
        }))
    {
        println!(
            "         e.g. top-3 at {}: {:?} under {guarantee:?}",
            queries[0],
            items
                .iter()
                .map(|&(i, p)| (i, (p * 1000.0).round() / 1000.0))
                .collect::<Vec<_>>(),
        );
    }

    // Wave 2: churn over the wire — applies publish new epochs without
    // blocking the queries other connections keep sending.
    let mut updates: Vec<Update> = (0..64).map(Update::Remove).collect();
    for i in 0..48 {
        let v = i as f64;
        updates.push(Update::Insert(DiscreteUncertainPoint::uniform(vec![
            Point::new((v * 1.7) % 50.0 - 25.0, (v * 2.9) % 50.0 - 25.0),
            Point::new((v * 3.1) % 50.0 - 25.0, (v * 0.7) % 50.0 - 25.0),
        ])));
    }
    for i in 0..16 {
        updates.push(Update::Move {
            id: 1000 + i,
            to: DiscreteUncertainPoint::certain(Point::new((i as f64 * 5.3) % 40.0 - 20.0, 5.0)),
        });
    }
    match client.call(&Request::Apply(updates)) {
        Ok(Reply::Apply {
            epoch,
            live,
            tombstones,
            removed,
            moved,
            missed,
            inserted,
        }) => println!(
            "[churn]  epoch {epoch} | +{} inserted, -{removed} removed, {moved} moved, {missed} missed | {live} live / {tombstones} tombstones",
            inserted.len(),
        ),
        other => println!("[churn]  unexpected: {other:?}"),
    }
    run_wave(&mut client, "wave 2", &wave);

    if hosted.is_some() {
        println!("\nshutting the self-hosted server down");
    }
    drop(hosted);
}

/// Sends every request of a wave and tallies replies by kind — a shed or
/// failed reply is a *count*, not a crash.
fn run_wave(client: &mut Client, tag: &str, wave: &[QueryRequest]) {
    let t0 = std::time::Instant::now();
    let (mut ok, mut shed, mut failed, mut other) = (0u32, 0u32, 0u32, 0u32);
    for &req in wave {
        match client.call(&Request::Query(req)) {
            Ok(Reply::Nonzero(_)) | Ok(Reply::Ranked { .. }) => ok += 1,
            Ok(Reply::Error {
                code: ErrorCode::Shed,
                ..
            }) => shed += 1,
            Ok(Reply::Error {
                code: ErrorCode::Failed,
                detail,
            }) => {
                failed += 1;
                println!("[{tag}] server-side failure: {detail}");
            }
            Ok(_) => other += 1,
            Err(e) => {
                println!("[{tag}] transport error after {ok} replies: {e}");
                return;
            }
        }
    }
    println!(
        "[{tag}] {} requests: {ok} answered, {shed} shed, {failed} failed, {other} other in {:?}",
        wave.len(),
        t0.elapsed(),
    );
}
