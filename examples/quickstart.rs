//! Quickstart: the core workflow in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small set of uncertain points, asks which of them can possibly
//! be the nearest neighbor of a query (`NN≠0`, Lemma 2.1 / Theorem 3.1), and
//! quantifies the probabilities three ways (exact, Monte Carlo, spiral
//! search — Section 4 of the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_geom::{Circle, Point};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint, DiskSet};
use uncertain_nn::nonzero::DiskNonzeroIndex;
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::{MonteCarloPnn, SampleBackend, SpiralSearch};

fn main() {
    // --- continuous model: sensors with disk-shaped uncertainty ------------
    let sensors = DiskSet::uniform(vec![
        Circle::new(Point::new(0.0, 0.0), 1.0),
        Circle::new(Point::new(5.0, 1.0), 2.0),
        Circle::new(Point::new(3.0, 6.0), 0.5),
        Circle::new(Point::new(40.0, 0.0), 1.0), // far away: never nearest
    ]);
    let index = DiskNonzeroIndex::build(&sensors);
    let q = Point::new(2.5, 2.0);
    let mut who = index.query(q);
    who.sort_unstable();
    println!("query q = {q}");
    println!("possible nearest neighbors NN≠0(q) = {who:?}");
    println!(
        "Δ(q) = {:.3} (worst-case distance to the closest sensor)",
        index.delta(q).unwrap()
    );

    // --- discrete model: location histograms --------------------------------
    let set = DiscreteSet::new(vec![
        DiscreteUncertainPoint::new(
            vec![Point::new(1.0, 0.0), Point::new(6.0, 0.0)],
            vec![0.7, 0.3],
        ),
        DiscreteUncertainPoint::new(
            vec![Point::new(0.0, 3.0), Point::new(2.0, 2.0)],
            vec![0.5, 0.5],
        ),
        DiscreteUncertainPoint::certain(Point::new(4.0, 4.0)),
    ]);
    let q = Point::new(2.0, 1.0);

    // Exact quantification probabilities (Eq. (2) sweep).
    let exact = quantification_discrete(&set, q);
    println!("\nexact      π(q) = {}", fmt(&exact));

    // Monte-Carlo estimates (Theorem 4.3).
    let mut rng = StdRng::seed_from_u64(7);
    let mc = MonteCarloPnn::build_discrete(&set, 2000, SampleBackend::KdTree, &mut rng);
    println!("monte-carlo π̂(q) = {}", fmt(&mc.estimate_all(q)));

    // Deterministic spiral search within ε = 0.01 (Theorem 4.7).
    let ss = SpiralSearch::build(&set);
    println!(
        "spiral      π̂(q) = {} (ε = 0.01, m = {})",
        fmt(&ss.estimate_all(q, 0.01)),
        ss.retrieval_budget(0.01)
    );

    let total: f64 = exact.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "probabilities sum to 1");
}

fn fmt(v: &[f64]) -> String {
    let cells: Vec<String> = v.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", cells.join(", "))
}
