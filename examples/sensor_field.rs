//! Sensor-field scenario: "which sensor is closest to the event?"
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```
//!
//! A field of sensors report imprecise positions (GPS error ⇒ disk-shaped
//! uncertainty regions with truncated-Gaussian pdfs — the locational model
//! of the paper's introduction). For each incoming event we must dispatch
//! the nearest sensor:
//!
//! 1. `NN≠0` (Theorem 3.1 structure) prunes the candidate set from hundreds
//!    to a handful — these are the only sensors with *any* chance of being
//!    nearest;
//! 2. Monte-Carlo quantification (Theorem 4.5) ranks the candidates by
//!    their probability of being nearest, with an additive-ε guarantee.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::{Circle, Point};
use uncertain_nn::model::{ContinuousUncertainPoint, DiskSet};
use uncertain_nn::nonzero::DiskNonzeroIndex;
use uncertain_nn::quantification::{MonteCarloPnn, SampleBackend};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // 400 sensors on a jittered grid over a 2 km × 2 km field; GPS error
    // grows with distance from the base station at the origin.
    let mut sensors = Vec::new();
    for gx in 0..20 {
        for gy in 0..20 {
            let c = Point::new(
                gx as f64 * 100.0 + rng.gen_range(-30.0..30.0),
                gy as f64 * 100.0 + rng.gen_range(-30.0..30.0),
            );
            let gps_error = 5.0 + c.to_vector().norm() / 100.0;
            sensors.push(ContinuousUncertainPoint::gaussian(
                Circle::new(c, gps_error),
                gps_error / 2.0,
            ));
        }
    }
    let field = DiskSet::new(sensors);
    let index = DiskNonzeroIndex::build(&field);

    // The quantifier is built once and reused for every event.
    let mc = MonteCarloPnn::build_continuous(&field, 3000, SampleBackend::KdTree, &mut rng);

    println!(
        "sensor field: {} sensors with uncertain positions",
        field.len()
    );
    println!();

    for event_id in 0..5 {
        let event = Point::new(rng.gen_range(0.0..1900.0), rng.gen_range(0.0..1900.0));
        let candidates = index.query(event);
        println!(
            "event #{event_id} at ({:.0}, {:.0}): {} / {} sensors can be nearest",
            event.x,
            event.y,
            candidates.len(),
            field.len()
        );
        let mut ranked = mc.estimate_sparse(event);
        ranked.truncate(3);
        for (i, p) in ranked {
            let c = field.points[i].region.center;
            println!(
                "    sensor {i:3} at ({:6.0}, {:6.0})  P[nearest] ≈ {p:.3}",
                c.x, c.y
            );
        }
        // Every positively-ranked sensor must be a NN≠0 candidate.
        let est = mc.estimate_all(event);
        for (i, &p) in est.iter().enumerate() {
            if p > 0.0 {
                assert!(
                    candidates.contains(&i),
                    "MC winner {i} not in the NN≠0 candidate set"
                );
            }
        }
    }
}
