//! Umbrella package for the `uncertain-nn` workspace: hosts the cross-crate
//! integration tests in `tests/` and the runnable examples in `examples/`.
//!
//! The library surface lives in the member crates; start with
//! [`uncertain_nn`].

pub use uncertain_arrangement;
pub use uncertain_envelope;
pub use uncertain_geom;
pub use uncertain_nn;
pub use uncertain_spatial;
pub use uncertain_voronoi;
