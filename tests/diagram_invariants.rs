//! Structural invariants of the nonzero Voronoi diagrams (continuous and
//! discrete) and of the paper's lower-bound constructions.

use uncertain_geom::{Aabb, Circle, Point};
use uncertain_nn::vnz::vertices::vertex_residual;
use uncertain_nn::vnz::{
    constructions, enumerate_vertices, vertices_brute, DiscreteNonzeroDiagram, GammaCurve,
    NonzeroVoronoiDiagram, WitnessKind,
};
use uncertain_nn::workload;

#[test]
fn envelope_and_brute_vertex_enumeration_agree_at_scale() {
    for seed in [101u64, 102, 103] {
        let set = workload::random_disk_set(14, 0.3, 2.0, seed);
        let disks = set.regions();
        let curves: Vec<GammaCurve> = (0..disks.len())
            .map(|i| GammaCurve::compute(&disks, i))
            .collect();
        let env = enumerate_vertices(&disks, &curves);
        let brute = vertices_brute(&disks);
        assert_eq!(env.len(), brute.len(), "seed {seed}");
        for v in &env {
            assert!(vertex_residual(&disks, v) < 1e-5, "residual too large");
            assert!(
                brute.iter().any(|u| u.point.dist(v.point) < 1e-5),
                "vertex {v:?} missing from brute enumeration"
            );
        }
    }
}

#[test]
fn all_construction_counts_meet_paper_predictions() {
    // Theorem 2.7 (two radius classes): ≥ 4m³ crossings.
    for m in 1..=3usize {
        let (disks, predicted) = constructions::theorem_2_7(m);
        let d = NonzeroVoronoiDiagram::build(disks);
        let crossings = d
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, WitnessKind::Crossing { .. }))
            .count();
        assert!(
            crossings >= predicted,
            "2.7 m={m}: {crossings} < {predicted}"
        );
    }
    // Theorem 2.8 (equal radii): ≥ m³ crossings.
    for m in 2..=4usize {
        let (disks, predicted) = constructions::theorem_2_8(m);
        let d = NonzeroVoronoiDiagram::build(disks);
        let crossings = d
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, WitnessKind::Crossing { .. }))
            .count();
        assert!(
            crossings >= predicted,
            "2.8 m={m}: {crossings} < {predicted}"
        );
    }
    // Theorem 2.10 (disjoint, collinear): ≥ (n−1)(n−2) vertices.
    for m in 2..=5usize {
        let (disks, predicted) = constructions::theorem_2_10_lower(m);
        let d = NonzeroVoronoiDiagram::build(disks);
        assert!(
            d.num_vertices() >= predicted,
            "2.10 m={m}: {} < {predicted}",
            d.num_vertices()
        );
    }
}

#[test]
fn semialgebraic_extension_square_like_dense_disks() {
    // Theorem 2.6 extends the O(n³) bound to semialgebraic regions of
    // constant description complexity; here we sanity-check the *disk*
    // pipeline under the same packing pressure (many mutually tangent-ish
    // disks), which exercises the same witness machinery.
    let mut disks = vec![];
    for i in 0..6 {
        for j in 0..6 {
            disks.push(Circle::new(
                Point::new(2.0 * i as f64, 2.0 * j as f64),
                0.95,
            ));
        }
    }
    let d = NonzeroVoronoiDiagram::build(disks.clone());
    let n = disks.len();
    assert!(d.num_vertices() <= 4 * n * n * n);
    for v in &d.vertices {
        assert!(vertex_residual(&disks, v) < 1e-5);
    }
}

#[test]
fn diagram_complexity_scales_subcubically_on_random_inputs() {
    // Random instances stay far below the adversarial bound (the paper's
    // open problem (i) asks to characterize this); here we pin the sanity
    // bounds: µ ≥ n-ish and µ ≤ c·n³.
    for &n in &[10usize, 20, 40] {
        let set = workload::random_disk_set(n, 0.5, 3.0, n as u64);
        let d = NonzeroVoronoiDiagram::build(set.regions());
        let c = d.complexity();
        assert!(c.faces >= 2, "n={n}: at least two faces");
        assert!(
            c.total() <= 4 * n * n * n,
            "n={n}: µ = {} too large",
            c.total()
        );
    }
}

#[test]
fn discrete_diagram_face_labels_are_exact() {
    let bbox = Aabb::from_corners(Point::new(-60.0, -60.0), Point::new(60.0, 60.0));
    for seed in [7u64, 8] {
        let set = workload::random_discrete_set(6, 3, 7.0, seed);
        let d = DiscreteNonzeroDiagram::build(&set, &bbox);
        assert!(!d.faces.is_empty());
        // Sample-point labels are brute-force verified inside build();
        // verify face disjointness statistics instead: every distinct label
        // seen by random queries exists among face labels.
        let labels: std::collections::BTreeSet<Vec<usize>> =
            d.faces.iter().map(|f| f.label.clone()).collect();
        for q in workload::random_queries(150, 80.0, seed + 5) {
            let mut s = d.query(q);
            s.sort_unstable();
            assert!(labels.contains(&s), "label {s:?} missing (seed {seed})");
        }
        // Euler consistency of the underlying subdivision.
        let sub = &d.subdivision;
        assert_eq!(
            sub.num_faces(),
            sub.num_edges() + sub.num_components() + 1 - sub.num_vertices()
        );
        // Face tracing and Euler agree on the bounded-face count.
        assert_eq!(d.faces.len(), sub.num_faces() - 1);
    }
}

#[test]
fn gamma_curves_respect_radius_monotonicity() {
    // For every curve point x on γ_i: moving towards c_i keeps P_i a
    // nonzero-NN, moving away drops it (the region is star-shaped around
    // c_i — the fact behind the polar parameterization of Lemma 2.2).
    let set = workload::random_disk_set(10, 0.5, 2.0, 77);
    let disks = set.regions();
    for i in 0..disks.len() {
        let c = GammaCurve::compute(&disks, i);
        for arc in &c.arcs {
            let t = 0.5 * (arc.theta_lo + arc.theta_hi);
            let Some(p) = c.point_at(t) else { continue };
            let r = disks[i].center.dist(p);
            for frac in [0.3, 0.7, 0.95] {
                let inside = disks[i].center + (p - disks[i].center) * frac;
                let nn = uncertain_nn::nonzero::nonzero_nn_disks(&disks, inside);
                assert!(nn.contains(&i), "γ_{i} star-shape violated at r·{frac}");
            }
            let outside = disks[i].center + (p - disks[i].center) * (1.0 + 1e-3 / r.max(1.0));
            let nn = uncertain_nn::nonzero::nonzero_nn_disks(&disks, outside);
            assert!(!nn.contains(&i), "γ_{i} boundary not tight");
        }
    }
}

#[test]
fn breakpoint_witnesses_touch_three_disks() {
    let set = workload::random_disk_set(12, 0.5, 2.5, 31);
    let disks = set.regions();
    let d = NonzeroVoronoiDiagram::build(disks.clone());
    for v in &d.vertices {
        match v.kind {
            WitnessKind::Breakpoint { i, k1, k2 } => {
                assert!(i != k1 && i != k2 && k1 != k2);
                assert!((disks[i].min_dist(v.point) - v.radius).abs() < 1e-5);
                assert!((disks[k1].max_dist(v.point) - v.radius).abs() < 1e-5);
                assert!((disks[k2].max_dist(v.point) - v.radius).abs() < 1e-5);
            }
            WitnessKind::Crossing { i, j, k } => {
                assert!(i != j && j != k && i != k);
                assert!((disks[i].min_dist(v.point) - v.radius).abs() < 1e-5);
                assert!((disks[j].min_dist(v.point) - v.radius).abs() < 1e-5);
                assert!((disks[k].max_dist(v.point) - v.radius).abs() < 1e-5);
            }
        }
    }
}
