//! Randomized op-sequence differential harness for the dynamic
//! (Bentley–Saxe) layer: proptest-generated interleavings of
//! insert / remove / move / query are checked **after every operation**
//! against a brute-force oracle rebuilt from scratch over the surviving
//! sites, for all three query families:
//!
//! * `NN≠0` — must equal the Lemma 2.1 evaluation of a fresh static build
//!   (and a fresh Theorem 3.2 index) exactly;
//! * quantification — must be **bit-identical** to the Eq. (2) sweep over
//!   the fresh build, via **both plan variants**: the fresh-path sweep over
//!   the live union *and* the k-way merged path over per-bucket sorted
//!   summaries (cold, then again warm). All paths share one sweep core fed
//!   the same entry order, so any divergence is a real bug, not float
//!   noise;
//! * expected-distance NN — minimal value bit-identical to a fresh
//!   `ExpectedNnIndex` query (safe-margin pruning makes the b&b minimum
//!   equal the scan minimum bitwise).
//!
//! Runs under the vendored deterministic proptest: failures print a
//! replayable `cc` seed line for `tests/proptest-regressions/
//! dynamic_differential.txt`. CI's `dynamic-gauntlet` and `quant-gauntlet`
//! jobs repeat the suite at `PROPTEST_CASES=2048`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::Point;
use uncertain_nn::dynamic::{DynamicConfig, DynamicSet, SiteId};
use uncertain_nn::expected::ExpectedNnIndex;
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
use uncertain_nn::nonzero::{nonzero_nn_discrete, DiscreteNonzeroIndex};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::workload;

/// One encoded operation: `(selector, x, y, dx, dy, w)`.
type RawOp = (u8, f64, f64, f64, f64, f64);

fn raw_op() -> impl Strategy<Value = RawOp> {
    (
        0u8..=3,
        -30.0f64..30.0,
        -30.0f64..30.0,
        -8.0f64..8.0,
        -8.0f64..8.0,
        0.05f64..1.0,
    )
}

/// The mirror the oracle is rebuilt from: `(stable id, site)`, ascending id
/// (inserts append fresh ids, moves replace in place, removes delete).
type Mirror = Vec<(SiteId, DiscreteUncertainPoint)>;

fn oracle_set(mirror: &Mirror) -> (DiscreteSet, Vec<SiteId>) {
    let ids: Vec<SiteId> = mirror.iter().map(|&(id, _)| id).collect();
    let set = DiscreteSet::new(mirror.iter().map(|(_, p)| p.clone()).collect());
    (set, ids)
}

/// Applies one encoded op to both the dynamic structure and the mirror.
fn apply_op(d: &mut DynamicSet, mirror: &mut Mirror, op: RawOp) {
    let (sel, x, y, dx, dy, w) = op;
    match sel {
        0 => {
            // Two-location site; both weights positive by construction.
            let site = DiscreteUncertainPoint::new(
                vec![Point::new(x, y), Point::new(x + dx, y + dy)],
                vec![w, 1.05 - w],
            );
            let id = d.insert(site.clone());
            mirror.push((id, site));
        }
        1 => {
            let site = DiscreteUncertainPoint::certain(Point::new(x, y));
            let id = d.insert(site.clone());
            mirror.push((id, site));
        }
        2 if mirror.len() > 1 => {
            let victim = (w * mirror.len() as f64) as usize % mirror.len();
            let (id, _) = mirror.remove(victim);
            assert!(d.remove(id), "live id {id} failed to remove");
        }
        _ if !mirror.is_empty() => {
            let victim = ((w + dx.abs()) * mirror.len() as f64) as usize % mirror.len();
            let id = mirror[victim].0;
            let site = DiscreteUncertainPoint::uniform(vec![
                Point::new(x, y),
                Point::new(x + dx, y + dy),
                Point::new(x - dy, y + dx),
            ]);
            assert!(d.update_location(id, site.clone()));
            mirror[victim].1 = site;
        }
        _ => {}
    }
}

/// The full differential check at one query point.
fn check_all_families(d: &DynamicSet, mirror: &Mirror, q: Point) -> Result<(), TestCaseError> {
    let (fresh, ids) = oracle_set(mirror);
    prop_assert_eq!(d.len(), fresh.len());

    // NN≠0 vs the Lemma 2.1 oracle over the fresh build.
    let got = d.nonzero(q);
    let want: Vec<SiteId> = nonzero_nn_discrete(&fresh, q)
        .into_iter()
        .map(|dense| ids[dense])
        .collect();
    prop_assert_eq!(&got, &want, "NN≠0 mismatch at {}", q);

    // …and vs a fresh Theorem 3.2 index (static-structure cross-check).
    let mut via_index = DiscreteNonzeroIndex::build(&fresh).query(q);
    via_index.sort_unstable();
    let via_index: Vec<SiteId> = via_index.into_iter().map(|dense| ids[dense]).collect();
    prop_assert_eq!(&got, &via_index, "fresh-index mismatch at {}", q);

    // Quantification, fresh-path variant: bit-identical to the oracle.
    let pi_fresh = quantification_discrete(&fresh, q);
    let pi_dyn = d.quantification(q);
    prop_assert_eq!(pi_dyn.len(), pi_fresh.len());
    for ((id, got_pi), (dense, want_pi)) in pi_dyn.iter().zip(pi_fresh.iter().enumerate()) {
        prop_assert_eq!(*id, ids[dense]);
        prop_assert_eq!(
            got_pi.to_bits(),
            want_pi.to_bits(),
            "π for site {} at {}: dynamic {} vs fresh {}",
            id,
            q,
            got_pi,
            want_pi
        );
    }

    // Quantification, merged-path variant (k-way merge over per-bucket
    // sorted summaries, tombstones filtered at draw time): bit-identical to
    // the same oracle — first touching cold summaries, then again with
    // every bucket warm.
    for pass in ["cold-or-warm", "warm"] {
        let (pi_merged, mstats) = d.quantification_merged_with_stats(q);
        prop_assert_eq!(pi_merged.len(), pi_fresh.len());
        for ((id, got_pi), (dense, want_pi)) in pi_merged.iter().zip(pi_fresh.iter().enumerate()) {
            prop_assert_eq!(*id, ids[dense]);
            prop_assert_eq!(
                got_pi.to_bits(),
                want_pi.to_bits(),
                "merged π ({}) for site {} at {}: merged {} vs fresh {}",
                pass,
                id,
                q,
                got_pi,
                want_pi
            );
        }
        prop_assert!(mstats.entries_merged <= mstats.live_locations);
        if pass == "warm" {
            prop_assert_eq!(
                mstats.warm_buckets,
                mstats.buckets,
                "all touched buckets must be warm on the second pass"
            );
        }
    }

    // Expected NN: minimal value bit-identical to a fresh index query.
    let want_e = ExpectedNnIndex::build_discrete(&fresh).query(q);
    let got_e = d.expected_nn(q);
    match (got_e, want_e) {
        (None, None) => {}
        (Some((_, ge)), Some((_, we))) => prop_assert_eq!(
            ge.to_bits(),
            we.to_bits(),
            "expected-NN value at {}: dynamic {} vs fresh {}",
            q,
            ge,
            we
        ),
        other => prop_assert!(false, "expected-NN existence mismatch: {:?}", other),
    }
    Ok(())
}

fn run_differential(ops: &[RawOp], config: DynamicConfig) -> Result<(), TestCaseError> {
    let base = workload::random_discrete_set(10, 3, 5.0, 0xD1FF);
    let mut d = DynamicSet::from_set(&base, config);
    let mut mirror: Mirror = base
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.clone()))
        .collect();
    let fixed_queries = workload::random_queries(2, 60.0, 0xD1FF ^ 1);
    for &op in ops {
        apply_op(&mut d, &mut mirror, op);
        // Check at the op's own coordinates (adversarially close to the
        // mutated site) and at two fixed far-field points.
        let (_, x, y, dx, dy, _) = op;
        for q in [Point::new(x, y), Point::new(x + dx, y + dy)]
            .into_iter()
            .chain(fixed_queries.iter().copied())
        {
            check_all_families(&d, &mirror, q)?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Default configuration: cost-model bucket indexing, lazy compaction.
    #[test]
    fn dynamic_matches_fresh_build_after_every_op(ops in prop::collection::vec(raw_op(), 1..28)) {
        run_differential(&ops, DynamicConfig::default())?;
    }

    /// Every bucket indexed (tiny threshold) + aggressive compaction: the
    /// same sequences exercise the indexed merge path and global rebuilds.
    #[test]
    fn dynamic_matches_fresh_build_with_indexed_buckets(ops in prop::collection::vec(raw_op(), 1..28)) {
        run_differential(&ops, DynamicConfig {
            index_min_locations: 2,
            max_dead_fraction: 0.15,
            min_dead_for_rebuild: 3,
        })?;
    }
}

/// A long deterministic churn stream (no proptest, bigger n): checks every
/// 10th op plus the final state, so regressions in amortized paths (deep
/// carries, repeated global rebuilds) surface even if the short proptest
/// sequences miss them.
#[test]
fn long_churn_stream_stays_consistent() {
    let base = workload::random_discrete_set(48, 3, 5.0, 0xBEEF);
    let mut d = DynamicSet::from_set(&base, DynamicConfig::default());
    let mut mirror: Mirror = base
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.clone()))
        .collect();
    let mut rng = StdRng::seed_from_u64(0xBEEF ^ 7);
    let queries = workload::random_queries(3, 60.0, 0xBEEF ^ 9);
    for step in 0..400 {
        let op: RawOp = (
            rng.gen_range(0..4u32) as u8,
            rng.gen_range(-30.0..30.0),
            rng.gen_range(-30.0..30.0),
            rng.gen_range(-8.0..8.0),
            rng.gen_range(-8.0..8.0),
            rng.gen_range(0.05..1.0),
        );
        apply_op(&mut d, &mut mirror, op);
        if step % 10 == 0 || step >= 396 {
            for &q in &queries {
                check_all_families(&d, &mirror, q).unwrap();
            }
        }
    }
    let s = d.stats();
    assert!(s.rebuild.merges > 0);
    assert!(
        s.rebuild.amortized_rebuild_cost() <= (s.live.max(2) as f64).log2() * 4.0 + 8.0,
        "amortized rebuild cost blew past the logarithmic bound: {:?}",
        s.rebuild
    );
}

/// Removing everything and refilling keeps ids stable and answers exact —
/// the tombstone → global-rebuild → reuse cycle end to end.
#[test]
fn drain_and_refill_cycle() {
    let base = workload::random_discrete_set(20, 2, 4.0, 0xACE);
    let mut d = DynamicSet::from_set(&base, DynamicConfig::default());
    let mut mirror: Mirror = base
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.clone()))
        .collect();
    let q = Point::new(1.0, 1.0);
    while mirror.len() > 1 {
        let (id, _) = mirror.remove(0);
        assert!(d.remove(id));
        check_all_families(&d, &mirror, q).unwrap();
    }
    for i in 0..20 {
        let site = DiscreteUncertainPoint::certain(Point::new(i as f64, -i as f64));
        let id = d.insert(site.clone());
        mirror.push((id, site));
        check_all_families(&d, &mirror, q).unwrap();
    }
    assert_eq!(d.len(), 21);
}
