//! Engine ↔ library consistency: batched, multi-threaded engine answers must
//! be **identical** to the direct single-threaded library calls for nonzero
//! sets, and within the declared `Guarantee` slack for probabilities — for
//! all three request shapes, at 1 worker and at >1 workers.
//!
//! CI runs this suite twice: once with `UNC_ENGINE_THREADS=1` and once with
//! the environment's default parallelism (the env var overrides the explicit
//! per-engine thread counts below, so the 1-vs-4 comparisons degenerate to
//! 1-vs-1 under the pinned run — still a valid identity check).

use uncertain_engine::{Engine, EngineConfig, QueryRequest, QueryResult};
use uncertain_geom::Point;
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::queries::{threshold_nn, top_k_probable, ExactQuantifier, Guarantee, Quantifier};
use uncertain_nn::workload;

/// A mixed batch over shared query points: every shape at every point.
fn mixed_batch(queries: &[Point], tau: f64, k: usize) -> Vec<QueryRequest> {
    let mut batch = Vec::with_capacity(3 * queries.len());
    for &q in queries {
        batch.push(QueryRequest::Nonzero { q });
        batch.push(QueryRequest::Threshold { q, tau });
        batch.push(QueryRequest::TopK { q, k });
    }
    batch
}

fn engine_with(set: &uncertain_nn::DiscreteSet, threads: usize, guarantee: Guarantee) -> Engine {
    Engine::new(
        set.clone(),
        EngineConfig {
            threads: Some(threads),
            guarantee,
            ..EngineConfig::default()
        },
    )
}

#[test]
fn exact_engine_matches_library_at_one_and_many_workers() {
    let set = workload::random_discrete_set(60, 3, 6.0, 101);
    let queries = workload::random_queries(40, 60.0, 102);
    let batch = mixed_batch(&queries, 0.25, 3);
    let exact = ExactQuantifier(&set);

    for threads in [1usize, 4] {
        let engine = engine_with(&set, threads, Guarantee::Exact);
        let resp = engine.run_batch(&batch);
        assert_eq!(resp.results.len(), batch.len());
        for (req, res) in batch.iter().zip(&resp.results) {
            match (req, res) {
                (QueryRequest::Nonzero { q }, QueryResult::Nonzero(ids)) => {
                    let mut direct = set.nonzero_nn(*q);
                    direct.sort_unstable();
                    assert_eq!(ids, &direct, "NN≠0 mismatch at {q} ({threads} workers)");
                }
                (QueryRequest::Threshold { q, tau }, QueryResult::Ranked { items, guarantee }) => {
                    assert_eq!(*guarantee, Guarantee::Exact);
                    assert_eq!(
                        items,
                        &threshold_nn(&exact, *q, *tau),
                        "threshold mismatch at {q} ({threads} workers)"
                    );
                }
                (QueryRequest::TopK { q, k }, QueryResult::Ranked { items, .. }) => {
                    assert_eq!(
                        items,
                        &top_k_probable(&exact, *q, *k),
                        "top-k mismatch at {q} ({threads} workers)"
                    );
                }
                other => panic!("request/result shape mismatch: {other:?}"),
            }
        }
    }
}

#[test]
fn batched_results_are_identical_across_worker_counts() {
    // Threaded execution must be a pure performance knob: bit-identical
    // results regardless of sharding, for every guarantee tier.
    let set = workload::random_discrete_set(80, 3, 5.0, 103);
    let batch = mixed_batch(&workload::random_queries(48, 60.0, 104), 0.2, 4);
    for guarantee in [
        Guarantee::Exact,
        Guarantee::Additive(0.05),
        Guarantee::Probabilistic {
            eps: 0.1,
            delta: 0.05,
        },
    ] {
        let r1 = engine_with(&set, 1, guarantee).run_batch(&batch);
        let r4 = engine_with(&set, 4, guarantee).run_batch(&batch);
        assert_eq!(
            r1.results, r4.results,
            "results diverged across worker counts under {guarantee:?}"
        );
    }
}

#[test]
fn approximate_engines_respect_declared_slack() {
    let set = workload::random_discrete_set(50, 3, 6.0, 105);
    let queries = workload::random_queries(30, 60.0, 106);
    let batch = mixed_batch(&queries, 0.2, 5);
    for (threads, guarantee) in [
        (1usize, Guarantee::Additive(0.05)),
        (4, Guarantee::Additive(0.05)),
        (
            1,
            Guarantee::Probabilistic {
                eps: 0.1,
                delta: 0.05,
            },
        ),
        (
            4,
            Guarantee::Probabilistic {
                eps: 0.1,
                delta: 0.05,
            },
        ),
    ] {
        let engine = engine_with(&set, threads, guarantee);
        let resp = engine.run_batch(&batch);
        for (req, res) in batch.iter().zip(&resp.results) {
            match (req, res) {
                (QueryRequest::Nonzero { q }, QueryResult::Nonzero(ids)) => {
                    // Nonzero sets stay exact under every guarantee tier.
                    let mut direct = set.nonzero_nn(*q);
                    direct.sort_unstable();
                    assert_eq!(ids, &direct);
                }
                (QueryRequest::Threshold { q, tau }, QueryResult::Ranked { items, guarantee }) => {
                    let slack = guarantee.slack();
                    assert!(slack > 0.0 && slack < 0.2, "declared slack: {slack}");
                    let pi = quantification_discrete(&set, *q);
                    // Estimates within slack of exact values…
                    for &(i, est) in items {
                        assert!(
                            (est - pi[i]).abs() <= slack + 1e-9,
                            "π̂_{i} = {est} vs exact {} beyond slack {slack}",
                            pi[i]
                        );
                    }
                    // …and no false negatives at threshold τ.
                    let reported: Vec<usize> = items.iter().map(|&(i, _)| i).collect();
                    for (i, &p) in pi.iter().enumerate() {
                        if p >= *tau {
                            assert!(reported.contains(&i), "π_{i} = {p} ≥ τ missing at {q}");
                        }
                    }
                }
                (QueryRequest::TopK { q, k }, QueryResult::Ranked { items, guarantee }) => {
                    assert!(items.len() <= *k);
                    // Each reported winner is within 2·slack of the best
                    // unreported exact probability it displaced.
                    let pi = quantification_discrete(&set, *q);
                    let slack = guarantee.slack();
                    let mut best_missing: f64 = 0.0;
                    for (i, &p) in pi.iter().enumerate() {
                        if !items.iter().any(|&(j, _)| j == i) {
                            best_missing = best_missing.max(p);
                        }
                    }
                    if items.len() == *k {
                        for &(i, _) in items {
                            assert!(
                                pi[i] >= best_missing - 2.0 * slack - 1e-9,
                                "top-{k} member π_{i} = {} vs displaced {best_missing}",
                                pi[i]
                            );
                        }
                    }
                }
                other => panic!("shape mismatch: {other:?}"),
            }
        }
    }
}

#[test]
fn engine_quantifier_agrees_with_library_quantifier_trait() {
    // `Engine::estimates` is the same quantity `Quantifier::estimate_all`
    // exposes; under the exact guarantee they must agree bit-for-bit.
    let set = workload::random_discrete_set(35, 3, 5.0, 107);
    let engine = engine_with(&set, 1, Guarantee::Exact);
    let exact = ExactQuantifier(&set);
    for q in workload::random_queries(20, 60.0, 108) {
        let (pi, g) = engine.estimates(q);
        assert_eq!(g, Guarantee::Exact);
        assert_eq!(pi, exact.estimate_all(q));
    }
}

#[test]
fn snapped_cache_identity_within_cells_and_certified_error() {
    // With a positive grid every query in a cell gets the identical answer,
    // and the widened guarantee certifies the distance to the exact answer.
    let set = workload::random_discrete_set(25, 3, 6.0, 109);
    let grid = 0.75;
    let engine = Engine::new(
        set.clone(),
        EngineConfig {
            threads: Some(2),
            cache_grid: grid,
            ..EngineConfig::default()
        },
    );
    for center in workload::random_queries(15, 50.0, 110) {
        let jitter = [
            Point::new(center.x + 0.2 * grid, center.y - 0.1 * grid),
            Point::new(center.x - 0.15 * grid, center.y + 0.22 * grid),
        ];
        let (pi0, g0) = engine.estimates(center);
        for q in jitter {
            if uncertain_engine::quantize_point(q, grid)
                != uncertain_engine::quantize_point(center, grid)
            {
                continue; // jitter crossed a cell boundary: different key
            }
            let (pi, g) = engine.estimates(q);
            assert_eq!(pi0, pi, "same cell must serve identical answers");
            assert_eq!(g0, g);
            let exact = quantification_discrete(&set, q);
            for (i, (est, ex)) in pi.iter().zip(&exact).enumerate() {
                assert!(
                    (est - ex).abs() <= g.slack() + 1e-9,
                    "certified slack violated for π_{i}"
                );
            }
        }
    }
}

#[test]
fn stats_report_plan_cache_and_utilization() {
    let set = workload::random_discrete_set(1500, 3, 5.0, 111);
    let engine = engine_with(&set, 2, Guarantee::Exact);
    let batch: Vec<QueryRequest> = workload::random_queries(24, 60.0, 112)
        .iter()
        .cycle()
        .take(192)
        .map(|&q| QueryRequest::Nonzero { q })
        .collect();
    let resp = engine.run_batch(&batch);
    let s = &resp.stats;
    assert!(s.plan.nonzero.is_some());
    assert!(!s.plan.estimates.is_empty());
    assert_eq!(s.cache_hits + s.cache_misses, batch.len());
    assert!(s.cache_hits > 0, "repeated queries in one batch must hit");
    assert!(s.wall.as_nanos() > 0);
    let repeat = engine.run_batch(&batch);
    assert_eq!(repeat.stats.cache_misses, 0);
    assert_eq!(resp.results, repeat.results);
}
