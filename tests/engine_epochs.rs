//! Epoch/snapshot semantics of `Engine::apply` under concurrency: batches
//! racing `apply()` must each serve one *consistent* epoch — every answer
//! equals the oracle of the epoch the batch reports ([`ExecStats::epoch`]),
//! which must be one the batch overlapped — and cache hits must never
//! resurrect a dead epoch's answers.
//!
//! CI's `dynamic-gauntlet` job runs this suite at the environment's default
//! parallelism and pinned to `UNC_ENGINE_THREADS=1`; the explicit 1- and
//! 4-worker engines below degenerate to 1-vs-1 under the pinned run, which
//! is still a valid consistency check.

use std::sync::Mutex;

use uncertain_engine::shard::{shard_of, ShardedEngine};
use uncertain_engine::{Engine, EngineConfig, QueryRequest, QueryResult, Update};
use uncertain_geom::Point;
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::workload;

/// One recorded epoch: the live set and the dense→id map right after the
/// apply that published it.
struct EpochOracle {
    set: DiscreteSet,
    ids: Vec<usize>,
}

fn record(engine: &Engine) -> EpochOracle {
    EpochOracle {
        set: engine.live_set(),
        ids: engine.site_ids(),
    }
}

/// Checks a full batch response against the oracle of the epoch the batch
/// reports having served.
fn assert_batch_matches_epoch(
    batch: &[QueryRequest],
    resp: &uncertain_engine::BatchResponse,
    oracle: &EpochOracle,
) {
    for (req, res) in batch.iter().zip(&resp.results) {
        match (req, res) {
            (QueryRequest::Nonzero { q }, QueryResult::Nonzero(got)) => {
                let mut want: Vec<usize> = oracle
                    .set
                    .nonzero_nn(*q)
                    .into_iter()
                    .map(|dense| oracle.ids[dense])
                    .collect();
                want.sort_unstable();
                assert_eq!(
                    got, &want,
                    "NN≠0 at {q} diverged from epoch {} oracle",
                    resp.stats.epoch
                );
            }
            (QueryRequest::TopK { q, k }, QueryResult::Ranked { items, .. }) => {
                let pi = quantification_discrete(&oracle.set, *q);
                let mut want: Vec<(usize, f64)> = pi
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, p)| p > 0.0)
                    .collect();
                want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                want.truncate(*k);
                let want: Vec<(usize, f64)> =
                    want.into_iter().map(|(d, p)| (oracle.ids[d], p)).collect();
                assert_eq!(
                    items, &want,
                    "top-k at {q} diverged from epoch {} oracle",
                    resp.stats.epoch
                );
            }
            other => panic!("request/result shape mismatch: {other:?}"),
        }
    }
}

fn mixed_batch(queries: &[Point], k: usize) -> Vec<QueryRequest> {
    let mut batch = Vec::with_capacity(2 * queries.len());
    for &q in queries {
        batch.push(QueryRequest::Nonzero { q });
        batch.push(QueryRequest::TopK { q, k });
    }
    batch
}

fn churn_updates(round: usize, live_hint: &[usize]) -> Vec<Update> {
    let mut updates = vec![];
    // Remove a couple of (probably live) ids, move one, insert two.
    for j in 0..2 {
        if let Some(&id) = live_hint.get((round * 3 + j * 5) % live_hint.len().max(1)) {
            updates.push(Update::Remove(id));
        }
    }
    if let Some(&id) = live_hint.get((round * 7 + 1) % live_hint.len().max(1)) {
        updates.push(Update::Move {
            id,
            to: DiscreteUncertainPoint::certain(Point::new(
                (round as f64 * 3.7) % 40.0 - 20.0,
                (round as f64 * 5.3) % 40.0 - 20.0,
            )),
        });
    }
    for j in 0..2 {
        let v = (round * 2 + j) as f64;
        updates.push(Update::Insert(DiscreteUncertainPoint::uniform(vec![
            Point::new((v * 1.9) % 50.0 - 25.0, (v * 2.3) % 50.0 - 25.0),
            Point::new((v * 3.1) % 50.0 - 25.0, (v * 0.7) % 50.0 - 25.0),
        ])));
    }
    updates
}

/// Readers race the writer; every batch must serve exactly one epoch the
/// batch overlapped, with answers equal to that epoch's oracle.
#[test]
fn concurrent_batches_race_apply_and_stay_epoch_consistent() {
    for workers in [1usize, 4] {
        let set = workload::random_discrete_set(30, 3, 6.0, 501);
        let engine = Engine::new(
            set,
            EngineConfig {
                threads: Some(workers),
                ..EngineConfig::default()
            },
        );
        let batch = mixed_batch(&workload::random_queries(12, 60.0, 502), 3);
        // Oracles by epoch; epoch 0 recorded before any reader starts.
        let oracles = Mutex::new(vec![record(&engine)]);

        std::thread::scope(|scope| {
            let engine = &engine;
            let oracles = &oracles;
            let batch = &batch;
            let mut readers = vec![];
            for _ in 0..3 {
                readers.push(scope.spawn(move || {
                    for _ in 0..12 {
                        let lo = engine.epoch();
                        let resp = engine.run_batch(batch);
                        let hi = engine.epoch();
                        let served = resp.stats.epoch;
                        assert!(
                            (lo..=hi).contains(&served),
                            "served epoch {served} outside overlap window [{lo}, {hi}]"
                        );
                        // The writer records the oracle synchronously before
                        // publishing readers can observe the epoch, so the
                        // entry must exist.
                        let oracles = oracles.lock().unwrap();
                        assert_batch_matches_epoch(batch, &resp, &oracles[served as usize]);
                    }
                }));
            }
            // Writer: churn through 8 epochs while readers hammer batches.
            for round in 0..8 {
                let live = engine.site_ids();
                let updates = churn_updates(round, &live);
                let mut oracles_guard = oracles.lock().unwrap();
                let report = engine.apply(&updates);
                assert_eq!(report.epoch as usize, oracles_guard.len());
                oracles_guard.push(record(engine));
                drop(oracles_guard);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            for r in readers {
                r.join().unwrap();
            }
        });
    }
}

/// An answer cached at epoch `e` must never be served at epoch `e' ≠ e`,
/// even for bit-identical queries — the epoch-stamped keys guarantee it.
#[test]
fn cache_hits_never_serve_a_dead_epoch() {
    let set = workload::random_discrete_set(20, 3, 5.0, 503);
    let engine = Engine::new(
        set,
        EngineConfig {
            threads: Some(2),
            cache_capacity: 1 << 14,
            ..EngineConfig::default()
        },
    );
    let q = Point::new(0.5, -0.25);
    let batch = [QueryRequest::Nonzero { q }, QueryRequest::TopK { q, k: 3 }];

    // Warm epoch 0's cache, then prove re-running hits it.
    let cold = engine.run_batch(&batch);
    let warm = engine.run_batch(&batch);
    assert_eq!(warm.stats.cache_hits, batch.len());
    assert_eq!(cold.results, warm.results);

    // Kill every site the epoch-0 answer mentions and park a certain site
    // exactly at q: the correct answer *must* change.
    let QueryResult::Nonzero(old) = &cold.results[0] else {
        panic!("shape");
    };
    let mut updates: Vec<Update> = old.iter().map(|&id| Update::Remove(id)).collect();
    updates.push(Update::Insert(DiscreteUncertainPoint::certain(q)));
    let report = engine.apply(&updates);
    let new_id = report.inserted[0];

    let fresh = engine.run_batch(&batch);
    assert_eq!(fresh.stats.epoch, 1);
    // Same query bits, new epoch: the stale entries are unreachable, so the
    // first post-apply batch cannot hit.
    assert_eq!(fresh.stats.cache_hits, 0);
    assert_eq!(fresh.results[0], QueryResult::Nonzero(vec![new_id]));
    assert_ne!(&fresh.results[0], &cold.results[0]);

    // And the new epoch warms its own entries.
    let warm2 = engine.run_batch(&batch);
    assert_eq!(warm2.stats.cache_hits, batch.len());
    assert_eq!(warm2.results, fresh.results);
}

/// A `ShardedEngine` apply whose batch straddles k shards must publish all
/// k shard epochs **atomically** with respect to in-flight readers: every
/// observed `(generation, epoch vector)` — whether via `shard_epochs()` or
/// a batch's `ExecStats` — must be exactly one the writer published, never
/// a torn mix of two publications.
#[test]
fn straddling_batches_publish_all_shard_epochs_atomically() {
    let set = workload::random_discrete_set(40, 3, 6.0, 601);
    let engine = ShardedEngine::new(
        set,
        EngineConfig {
            shards: Some(4),
            threads: Some(4),
            ..EngineConfig::default()
        },
    );
    assert_eq!(engine.num_shards(), 4);
    let q = Point::new(0.25, -0.75);
    // Every (generation, epoch vector) the writer has published. The
    // writer records synchronously (holding the lock across the apply)
    // before readers can observe the new snapshot, so lookups never miss.
    let published = Mutex::new(vec![engine.shard_epochs()]);
    let mut straddled = 0usize;

    std::thread::scope(|scope| {
        let engine = &engine;
        let published = &published;
        let mut readers = vec![];
        for _ in 0..3 {
            readers.push(scope.spawn(move || {
                for _ in 0..30 {
                    let (generation, epochs) = engine.shard_epochs();
                    {
                        let published = published.lock().unwrap();
                        assert!(
                            published
                                .iter()
                                .any(|(g, e)| *g == generation && e == &epochs),
                            "torn epoch vector: generation {generation} epochs {epochs:?}"
                        );
                    }
                    let resp = engine.run_batch(&[QueryRequest::Nonzero { q }]);
                    let stats_epochs: Vec<u64> =
                        resp.stats.shard_stats.iter().map(|s| s.epoch).collect();
                    let published = published.lock().unwrap();
                    assert!(
                        published
                            .iter()
                            .any(|(g, e)| *g == resp.stats.epoch && e == &stats_epochs),
                        "batch served torn epoch vector: generation {} epochs {stats_epochs:?}",
                        resp.stats.epoch
                    );
                }
            }));
        }
        for round in 0..10 {
            let live = engine.site_ids();
            let updates = churn_updates(round, &live);
            let mut guard = published.lock().unwrap();
            let report = engine.apply(&updates);
            if report.touched.len() >= 2 {
                straddled += 1;
            }
            guard.push((report.generation, report.shard_epochs.clone()));
            drop(guard);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        for r in readers {
            r.join().unwrap();
        }
    });
    // The scenario actually exercised multi-shard publication.
    assert!(
        straddled >= 2,
        "expected several straddling applies, got {straddled}"
    );
}

/// Two concurrent appliers touching **disjoint** shards both commit: no
/// update is lost or reverted by the racing publications, and the final
/// answers are bit-identical to a monolithic engine that applied the same
/// updates serially (disjoint-shard updates commute).
#[test]
fn concurrent_disjoint_shard_appliers_both_commit() {
    let n = 60usize;
    let shards = 4usize;
    let set = workload::random_discrete_set(n, 3, 6.0, 602);
    let engine = ShardedEngine::new(
        set.clone(),
        EngineConfig {
            shards: Some(shards),
            threads: Some(4),
            ..EngineConfig::default()
        },
    );
    // Partition the initial ids by their shard; the two appliers remove
    // sites from different shards only.
    let mut by_shard: Vec<Vec<usize>> = vec![vec![]; shards];
    for id in 0..n {
        by_shard[shard_of(id, shards)].push(id);
    }
    let (sa, sb) = (0usize, 1usize);
    let batch_a: Vec<Update> = by_shard[sa]
        .iter()
        .take(4)
        .map(|&id| Update::Remove(id))
        .collect();
    let batch_b: Vec<Update> = by_shard[sb]
        .iter()
        .take(4)
        .map(|&id| Update::Remove(id))
        .collect();
    assert!(!batch_a.is_empty() && !batch_b.is_empty());

    std::thread::scope(|scope| {
        let engine = &engine;
        let a = scope.spawn(move || engine.apply(&batch_a));
        let b = scope.spawn(move || engine.apply(&batch_b));
        let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
        assert_eq!(ra.missed + rb.missed, 0, "concurrent applies lost updates");
        assert_eq!(ra.touched, vec![sa]);
        assert_eq!(rb.touched, vec![sb]);
    });

    let (_, epochs) = engine.shard_epochs();
    assert_eq!(epochs[sa], 1);
    assert_eq!(epochs[sb], 1);

    // Bit-identical end state vs a monolithic engine applying both batches.
    let mono = Engine::new(set, EngineConfig::default());
    let all: Vec<Update> = by_shard[sa]
        .iter()
        .take(4)
        .chain(by_shard[sb].iter().take(4))
        .map(|&id| Update::Remove(id))
        .collect();
    mono.apply(&all);
    assert_eq!(engine.site_ids(), mono.site_ids());
    let batch = mixed_batch(&workload::random_queries(8, 60.0, 603), 3);
    assert_eq!(
        engine.run_batch(&batch).results,
        mono.run_batch(&batch).results,
        "concurrent disjoint applies changed answers"
    );
}

/// Rebalance atomicity, raced: a spatial engine under corner-wave churn
/// (which provably triggers rebalances) is censused by racing reader
/// threads, and **every** observed snapshot must show every sentinel site
/// in exactly one shard — never zero (briefly removed but not yet
/// re-inserted) and never two (inserted before the remove landed). This is
/// the observable for migrations publishing in one generation: a
/// remove+insert migration published as two generations would be caught
/// here within a handful of iterations.
#[test]
fn rebalance_races_never_show_a_site_in_zero_or_two_shards() {
    use std::collections::HashSet;
    use uncertain_engine::shard::PartitionerKind;

    let n = 40usize;
    let set = workload::random_discrete_set(n, 3, 6.0, 701);
    let engine = ShardedEngine::new(
        set,
        EngineConfig {
            shards: Some(4),
            threads: Some(4),
            partitioner: PartitionerKind::Spatial,
            rebalance_ratio: 1.5,
            ..EngineConfig::default()
        },
    );
    // The initial sites are sentinels: the writer never removes them, so a
    // reader that ever fails to find one (or finds it twice) has witnessed
    // a torn migration.
    let sentinels: Vec<usize> = (0..n).collect();
    const CORNERS: [(f64, f64); 4] = [(90.0, 90.0), (-90.0, 90.0), (-90.0, -90.0), (90.0, -90.0)];

    std::thread::scope(|scope| {
        let engine = &engine;
        let sentinels = &sentinels;
        let mut readers = vec![];
        for _ in 0..3 {
            readers.push(scope.spawn(move || {
                for _ in 0..60 {
                    let census = engine.shard_census();
                    let mut seen: HashSet<usize> = HashSet::new();
                    for (shard, ids) in census.iter().enumerate() {
                        for &id in ids {
                            assert!(
                                seen.insert(id),
                                "site {id} censused in two shards (second: {shard})"
                            );
                        }
                    }
                    for &id in sentinels {
                        assert!(seen.contains(&id), "sentinel {id} censused in zero shards");
                    }
                }
            }));
        }
        // Writer: corner waves — insert a clump in one corner, drain the
        // clump from two rounds ago — driving repeated rebalances while the
        // readers census.
        let mut waves: Vec<Vec<usize>> = vec![];
        for round in 0..12 {
            let (cx, cy) = CORNERS[round % 4];
            let mut updates: Vec<Update> = (0..10)
                .map(|i| {
                    let t = (round * 10 + i) as f64 * 0.61;
                    Update::Insert(DiscreteUncertainPoint::certain(Point::new(
                        cx + 3.0 * t.cos(),
                        cy + 3.0 * t.sin(),
                    )))
                })
                .collect();
            if round >= 2 {
                updates.extend(waves[round - 2].iter().map(|&id| Update::Remove(id)));
            }
            let report = engine.apply(&updates);
            waves.push(report.inserted);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for r in readers {
            r.join().unwrap();
        }
    });

    // The race actually crossed the migration path.
    assert!(
        engine.rebalances() >= 1,
        "corner waves never triggered a rebalance — the race tested nothing"
    );
}

/// Serial applies: every epoch's batch answers equal a from-scratch oracle;
/// worker count never changes any answer.
#[test]
fn per_epoch_answers_identical_across_worker_counts() {
    let set = workload::random_discrete_set(40, 3, 5.0, 504);
    let mk = |threads: usize| {
        Engine::new(
            set.clone(),
            EngineConfig {
                threads: Some(threads),
                ..EngineConfig::default()
            },
        )
    };
    let (e1, e4) = (mk(1), mk(4));
    let batch = mixed_batch(&workload::random_queries(16, 60.0, 505), 4);
    for round in 0..6 {
        let updates = churn_updates(round, &e1.site_ids());
        let r1 = e1.apply(&updates);
        let r4 = e4.apply(&updates);
        assert_eq!(r1.epoch, r4.epoch);
        assert_eq!(
            r1.inserted, r4.inserted,
            "id assignment must be deterministic"
        );
        assert_eq!(r1.live, r4.live);
        let (b1, b4) = (e1.run_batch(&batch), e4.run_batch(&batch));
        assert_eq!(b1.results, b4.results, "worker count changed answers");
        assert_batch_matches_epoch(&batch, &b1, &record(&e1));
        assert_eq!(b1.stats.live_sites, r1.live);
        assert_eq!(b1.stats.tombstones, r1.tombstones);
    }
}
