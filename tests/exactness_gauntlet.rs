//! Degeneracy gauntlet: the exact-predicate kernel end to end.
//!
//! Every test here aims at the measure-zero (or ulp-scale) inputs that
//! defeat naive floating-point geometry: queries exactly **on** Voronoi
//! edges and vertices, exactly on subdivision edges and slab boundaries,
//! cocircular site families, collinear sites, and huge shared coordinate
//! offsets. The invariant throughout: the `V≠0` point-location path
//! (`query_located`, and the engine's `nonzero:diagram` plan) must agree
//! with the brute-force Lemma 2.1 oracle on *every* query — certified
//! locations are served from the structure, everything else falls back to
//! the oracle itself, so agreement must be exact, never approximate.
//!
//! Boundary constructions use even-integer coordinates so that midpoints,
//! bisector coefficients, and equidistance relations are exactly
//! representable in f64 — the queries really are *on* the degeneracy, not
//! merely near it.

use uncertain_engine::{Engine, EngineConfig, NonzeroPlan, QueryRequest, QueryResult};
use uncertain_geom::{Aabb, Point};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::ProbabilisticVoronoiDiagram;
use uncertain_nn::queries::Guarantee;
use uncertain_nn::vnz::DiscreteNonzeroDiagram;
use uncertain_nn::workload;
use uncertain_voronoi::Delaunay;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn certain_set(locs: &[Point]) -> DiscreteSet {
    DiscreteSet::new(
        locs.iter()
            .map(|&l| DiscreteUncertainPoint::certain(l))
            .collect(),
    )
}

fn brute(set: &DiscreteSet, q: Point) -> Vec<usize> {
    let mut ids = set.nonzero_nn(q);
    ids.sort_unstable();
    ids
}

fn assert_located_matches_brute(set: &DiscreteSet, d: &DiscreteNonzeroDiagram, queries: &[Point]) {
    for &q in queries {
        assert_eq!(
            d.query_located(q),
            brute(set, q),
            "diagram vs Lemma 2.1 oracle at {q}"
        );
    }
}

/// 12 certain sites exactly on the circle of radius 25 around an
/// even-integer center — every quadruple is cocircular.
fn cocircular_ring(cx: f64, cy: f64) -> Vec<Point> {
    [
        (7.0, 24.0),
        (24.0, 7.0),
        (24.0, -7.0),
        (7.0, -24.0),
        (-7.0, -24.0),
        (-24.0, -7.0),
        (-24.0, 7.0),
        (-7.0, 24.0),
        (15.0, 20.0),
        (20.0, -15.0),
        (-15.0, -20.0),
        (-20.0, 15.0),
    ]
    .iter()
    .map(|&(x, y)| p(cx + x, cy + y))
    .collect()
}

#[test]
fn grid_voronoi_edges_and_vertices_match_oracle() {
    // Certain sites on an even 3×3 grid: Voronoi edges lie exactly on odd
    // integer lines, Voronoi vertices exactly on odd-odd integer points.
    let sites: Vec<Point> = (0..3)
        .flat_map(|i| (0..3).map(move |j| p(4.0 * i as f64, 4.0 * j as f64)))
        .collect();
    let set = certain_set(&sites);
    let bbox = Aabb::from_corners(p(-20.0, -20.0), p(28.0, 28.0));
    let d = DiscreteNonzeroDiagram::build(&set, &bbox);

    let mut queries = vec![];
    // Exactly on Voronoi edges: midpoints of horizontally/vertically
    // adjacent sites, and sliding along the shared edge.
    for i in 0..3 {
        for j in 0..2 {
            queries.push(p(4.0 * i as f64, 4.0 * j as f64 + 2.0)); // vertical mid
            queries.push(p(4.0 * j as f64 + 2.0, 4.0 * i as f64)); // horizontal mid
            queries.push(p(4.0 * j as f64 + 2.0, 4.0 * i as f64 + 1.0)); // on edge, off mid
        }
    }
    // Exactly on Voronoi vertices (equidistant from 4 sites).
    for i in 0..2 {
        for j in 0..2 {
            queries.push(p(4.0 * i as f64 + 2.0, 4.0 * j as f64 + 2.0));
        }
    }
    // Exactly on the sites themselves, and clearly interior points.
    queries.extend(sites.iter().copied());
    queries.push(p(0.5, 0.25));
    queries.push(p(7.0, 3.0));
    assert_located_matches_brute(&set, &d, &queries);
}

#[test]
fn cocircular_sites_match_oracle_at_center_and_edges() {
    let sites = cocircular_ring(0.0, 0.0);
    let set = certain_set(&sites);
    let bbox = Aabb::from_corners(p(-80.0, -80.0), p(80.0, 80.0));
    let d = DiscreteNonzeroDiagram::build(&set, &bbox);

    let mut queries = vec![p(0.0, 0.0)]; // equidistant from all 12 sites
                                         // On bisectors of neighboring ring sites: the midpoint of two sites
                                         // with even coordinate sums is exactly representable.
    for w in sites.windows(2) {
        queries.push(p((w[0].x + w[1].x) / 2.0, (w[0].y + w[1].y) / 2.0));
    }
    queries.extend(sites.iter().copied());
    queries.extend(workload::random_queries(100, 70.0, 5));
    assert_located_matches_brute(&set, &d, &queries);

    // The Delaunay triangulation of the ring must terminate and stay
    // exactly Delaunay despite every quadruple being cocircular; nearest
    // queries at the center (a 12-way tie) must return a site at the exact
    // tie distance.
    let dt = Delaunay::build(&sites);
    let near = dt.nearest_site(p(0.0, 0.0)).unwrap() as usize;
    assert_eq!(
        sites[near].x * sites[near].x + sites[near].y * sites[near].y,
        625.0
    );
    // Exactly on a Delaunay/Voronoi boundary between two adjacent sites:
    // the returned site must achieve the true minimum distance.
    let m = p(
        (sites[0].x + sites[7].x) / 2.0,
        (sites[0].y + sites[7].y) / 2.0,
    );
    let near = dt.nearest_site(m).unwrap() as usize;
    let best = sites
        .iter()
        .map(|s| m.dist(*s))
        .fold(f64::INFINITY, f64::min);
    assert_eq!(m.dist(sites[near]), best);
}

#[test]
fn collinear_sites_match_oracle_on_the_line() {
    // All sites on the x-axis (including duplicates of spacing): the γ
    // curves degenerate to vertical bisector lines.
    let sites: Vec<Point> = (0..7).map(|i| p(4.0 * i as f64, 0.0)).collect();
    let set = certain_set(&sites);
    let bbox = Aabb::from_corners(p(-30.0, -30.0), p(54.0, 30.0));
    let d = DiscreteNonzeroDiagram::build(&set, &bbox);

    let mut queries = vec![];
    for i in 0..6 {
        queries.push(p(4.0 * i as f64 + 2.0, 0.0)); // on the line, on a bisector
        queries.push(p(4.0 * i as f64 + 2.0, 8.0)); // off the line, on a bisector
        queries.push(p(4.0 * i as f64 + 1.0, 0.0)); // on the line, between
    }
    queries.extend(sites.iter().copied());
    assert_located_matches_brute(&set, &d, &queries);

    // Delaunay of collinear input has no triangles but exact nearest:
    // query exactly between two sites returns one at the tie distance.
    let dt = Delaunay::build(&sites);
    let near = dt.nearest_site(p(6.0, 0.0)).unwrap() as usize;
    assert_eq!(p(6.0, 0.0).dist(sites[near]), 2.0);
}

#[test]
fn subdivision_vertices_and_slab_boundaries_fall_back_exactly() {
    // Random (uncertain, multi-location) sets: query exactly at stored
    // subdivision vertices and exactly on their slab boundary abscissae —
    // the certified locator must refuse and the fallback must agree with
    // the oracle.
    for seed in [3u64, 14, 77] {
        let set = workload::random_discrete_set(6, 3, 7.0, seed);
        let bbox = Aabb::from_corners(p(-60.0, -60.0), p(60.0, 60.0));
        let d = DiscreteNonzeroDiagram::build(&set, &bbox);
        let mut queries = vec![];
        for v in d.subdivision.vertices.iter().step_by(7).take(40) {
            queries.push(*v); // exactly on a vertex
            queries.push(p(v.x, v.y + 1.0)); // exactly on its slab boundary
            queries.push(p(v.x, v.y - 0.25));
        }
        // Exactly on stored edges: both endpoints are stored vertices, and
        // the *endpoints themselves* are on the edge; interior edge points
        // land within the guard band, which must also fall back cleanly.
        for &(a, b) in d.subdivision.edges.iter().step_by(11).take(30) {
            let pa = d.subdivision.vertices[a as usize];
            let pb = d.subdivision.vertices[b as usize];
            queries.push(pa.midpoint(pb));
        }
        assert_located_matches_brute(&set, &d, &queries);
    }
}

#[test]
fn engine_diagram_plan_matches_brute_on_boundaries_at_1_and_4_workers() {
    // Certain sites on an even 3×3 grid served through the engine: force
    // the `nonzero:diagram` plan with a large repeated batch and check
    // every answer — including queries exactly on Voronoi edges and
    // vertices — against the Lemma 2.1 oracle, at 1 worker and >1 workers.
    let sites: Vec<Point> = (0..3)
        .flat_map(|i| (0..3).map(move |j| p(4.0 * i as f64, 4.0 * j as f64)))
        .collect();
    let set = certain_set(&sites);

    let mut points = vec![];
    for i in 0..3 {
        for j in 0..2 {
            points.push(p(4.0 * i as f64, 4.0 * j as f64 + 2.0));
            points.push(p(4.0 * j as f64 + 2.0, 4.0 * i as f64));
        }
    }
    for i in 0..2 {
        for j in 0..2 {
            points.push(p(4.0 * i as f64 + 2.0, 4.0 * j as f64 + 2.0));
        }
    }
    points.extend(sites.iter().copied());
    points.extend(workload::random_queries(32, 20.0, 9));

    for threads in [1usize, 4] {
        let engine = Engine::new(
            set.clone(),
            EngineConfig {
                threads: Some(threads),
                ..EngineConfig::default()
            },
        );
        let batch: Vec<QueryRequest> = points
            .iter()
            .cycle()
            .take(24_576)
            .map(|&q| QueryRequest::Nonzero { q })
            .collect();
        let resp = engine.run_batch(&batch);
        assert_eq!(
            resp.stats.plan.nonzero,
            Some(NonzeroPlan::Diagram),
            "the batch must be large enough to amortize the diagram build"
        );
        assert_eq!(resp.stats.nonzero_guarantee, Some(Guarantee::Exact));
        for (req, res) in batch.iter().zip(&resp.results) {
            let (QueryRequest::Nonzero { q }, QueryResult::Nonzero(ids)) = (req, res) else {
                panic!("result shape mismatch");
            };
            assert_eq!(ids, &brute(&set, *q), "at {q} ({threads} workers)");
        }
    }
}

#[test]
fn near_parallel_bisectors_match_oracle() {
    // Almost-collinear sites produce nearly parallel bisectors whose
    // pairwise crossings are numerically ill-conditioned — the regime where
    // a naive f64 intersection quotient places arrangement vertices
    // arbitrarily far from the true crossing. With the exact-expansion
    // quotients and the per-slab order certificates, located answers must
    // still agree with the oracle everywhere, including on and near the
    // shallow crossings.
    for jitter in [1e-7, 1e-10, 1e-13] {
        let sites: Vec<Point> = (0..6)
            .map(|i| {
                let s = if i % 2 == 0 { 1.0 } else { -1.0 };
                p(6.0 * i as f64, s * jitter * (i as f64 + 1.0))
            })
            .collect();
        let set = certain_set(&sites);
        let bbox = Aabb::from_corners(p(-30.0, -30.0), p(60.0, 30.0));
        let d = DiscreteNonzeroDiagram::build(&set, &bbox);
        let mut queries = vec![];
        // Near the almost-shared line and on the near-degenerate bisector
        // crossings' neighborhood.
        for i in 0..6 {
            for &dy in &[0.0, jitter, -jitter, 0.5, -0.5] {
                queries.push(p(6.0 * i as f64 + 3.0, dy));
            }
        }
        queries.extend(workload::random_queries(100, 40.0, 31));
        assert_located_matches_brute(&set, &d, &queries);
    }
}

#[test]
fn vpr_bisector_queries_fall_back_to_the_exact_sweep() {
    // Even-integer locations make location-pair midpoints exactly
    // representable: such queries are exactly on a bisector line, the
    // locator refuses them, and the answer must equal the exact sweep
    // bit-for-bit.
    let set = DiscreteSet::new(vec![
        DiscreteUncertainPoint::uniform(vec![p(-8.0, 0.0), p(-4.0, 2.0)]),
        DiscreteUncertainPoint::uniform(vec![p(8.0, 0.0), p(4.0, -2.0)]),
        DiscreteUncertainPoint::certain(p(0.0, 10.0)),
    ]);
    let bbox = Aabb::from_corners(p(-40.0, -40.0), p(40.0, 40.0));
    let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox);

    let locs: Vec<Point> = set.all_locations().map(|(_, _, l, _)| l).collect();
    for i in 0..locs.len() {
        for j in (i + 1)..locs.len() {
            let m = p((locs[i].x + locs[j].x) / 2.0, (locs[i].y + locs[j].y) / 2.0);
            let got = vpr.query(m);
            let exact: Vec<(usize, f64)> = quantification_discrete(&set, m)
                .into_iter()
                .enumerate()
                .filter(|&(_, v)| v > 0.0)
                .collect();
            assert_eq!(got, exact, "on-bisector query at {m}");
        }
    }
}
