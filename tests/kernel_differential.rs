//! Differential suite for the SoA chunked-lane distance kernels
//! (`uncertain_spatial::soa`): the vectorized filter phase must be
//! **bit-identical** — same distances, same hit order — to the scalar
//! reference forms, across every tombstone-mask shape (all-live, all-dead,
//! alternating, random) and degenerate geometry (coincident locations from
//! grid snapping, zero weights, boundary radii). This is the contract that
//! lets the exact Lemma 2.1 / Eq. (2) decision logic sit on top of the
//! vectorized distance pass without an exactness audit per call site.

use proptest::prelude::*;
use uncertain_geom::Point;
use uncertain_nn::quantification::slab::LocationSlab;
use uncertain_spatial::soa::{bitmap_filled, PointSlab};

fn pt() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Grid-snapped points: duplicates (coincident locations) are common, and
/// query distances land exactly on radius boundaries.
fn grid_pt() -> impl Strategy<Value = Point> {
    (-6i32..=6, -6i32..=6).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

/// A tombstone bitmap over `n` entries: 0 = all live, 1 = all dead,
/// 2 = alternating, 3 = random (from `seed_words`). Trailing bits beyond
/// `n` are kept clear, matching the dynamic layer's bitmap convention.
fn mask_for(shape: u8, seed_words: &[u64], n: usize) -> Vec<u64> {
    let words = n.div_ceil(64);
    let mut v = match shape {
        0 => return bitmap_filled(n, true),
        1 => vec![0u64; words],
        2 => vec![0x5555_5555_5555_5555u64; words],
        _ => (0..words)
            .map(|i| seed_words[i % seed_words.len().max(1)])
            .collect(),
    };
    if let Some(last) = v.last_mut() {
        let tail = n - (words - 1) * 64;
        if tail < 64 {
            *last &= (1u64 << tail) - 1;
        }
    }
    v
}

/// Hits as `(index, distance bits)` — comparing bits catches any deviation
/// in the float expression, comparing the whole `Vec` catches reordering.
fn hits_of(f: impl FnOnce(&mut dyn FnMut(usize, f64))) -> Vec<(usize, u64)> {
    let mut out = vec![];
    f(&mut |i, d| out.push((i, d.to_bits())));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dist_all_bit_identical_to_scalar(pts in prop::collection::vec(pt(), 1..300), q in pt()) {
        let slab = PointSlab::from_points(pts.iter().copied());
        let (mut lane, mut scalar) = (vec![], vec![]);
        slab.dist_all_into(q, &mut lane);
        slab.dist_all_into_scalar(q, &mut scalar);
        prop_assert_eq!(lane.len(), scalar.len());
        for (i, (a, b)) in lane.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "index {}", i);
            prop_assert_eq!(a.to_bits(), q.dist(pts[i]).to_bits(), "vs Point::dist at {}", i);
        }
    }

    #[test]
    fn disk_filter_matches_scalar_on_coincident_grids(
        pts in prop::collection::vec(grid_pt(), 1..200),
        q in grid_pt(),
        pick in 0usize..200,
    ) {
        let slab = PointSlab::from_points(pts.iter().copied());
        // A radius exactly equal to an existing distance: the ≤ boundary
        // must resolve identically in both paths.
        let r = q.dist(pts[pick % pts.len()]);
        let lane = hits_of(|f| slab.for_each_in_disk_in_range(0, pts.len(), q, r, f));
        let scalar =
            hits_of(|f| slab.for_each_in_disk_in_range_scalar(0, pts.len(), q, r, f));
        prop_assert_eq!(lane, scalar);
    }

    #[test]
    fn masked_filter_matches_scalar_across_mask_shapes(
        pts in prop::collection::vec(pt(), 1..300),
        q in pt(),
        r in 0.0f64..80.0,
        shape in 0u8..4,
        seed_words in prop::collection::vec(0u64..=u64::MAX, 1..6),
    ) {
        let slab = PointSlab::from_points(pts.iter().copied());
        let alive = mask_for(shape, &seed_words, pts.len());
        let lane = hits_of(|f| slab.for_each_in_disk_masked(q, r, &alive, f));
        let scalar = hits_of(|f| slab.for_each_in_disk_masked_scalar(q, r, &alive, f));
        prop_assert_eq!(&lane, &scalar);
        // Cross-check against first principles: live entries in the closed
        // disk, ascending index, kernel-expression distance bits.
        let want: Vec<(usize, u64)> = pts
            .iter()
            .enumerate()
            .filter(|&(i, p)| alive[i >> 6] >> (i & 63) & 1 == 1 && q.dist(*p) <= r)
            .map(|(i, p)| (i, q.dist(*p).to_bits()))
            .collect();
        prop_assert_eq!(lane, want);
    }

    #[test]
    fn subrange_filter_matches_scalar(
        pts in prop::collection::vec(pt(), 1..300),
        q in pt(),
        r in 0.0f64..80.0,
        bounds in (0usize..300, 0usize..300),
    ) {
        let slab = PointSlab::from_points(pts.iter().copied());
        let (a, b) = (bounds.0 % (pts.len() + 1), bounds.1 % (pts.len() + 1));
        let (start, end) = (a.min(b), a.max(b));
        let lane = hits_of(|f| slab.for_each_in_disk_in_range(start, end, q, r, f));
        let scalar =
            hits_of(|f| slab.for_each_in_disk_in_range_scalar(start, end, q, r, f));
        prop_assert_eq!(lane, scalar);
    }

    #[test]
    fn location_slab_entries_bit_identical_with_zero_weights(
        sites in prop::collection::vec(
            (prop::collection::vec(grid_pt(), 1..5), prop::collection::vec(0u8..3, 1..5)),
            1..40,
        ),
        q in grid_pt(),
    ) {
        // Weights drawn from {0, 0.5, 1}: zero-weight locations must flow
        // through the entry assembly untouched (the sweep downstream is in
        // charge of their semantics, not the distance kernel).
        let mut slab = LocationSlab::new();
        for (site, (locs, ws)) in sites.iter().enumerate() {
            for (k, &loc) in locs.iter().enumerate() {
                slab.push(site, loc, f64::from(ws[k % ws.len()]) / 2.0);
            }
        }
        let kernel = slab.entries(q);
        let scalar = slab.entries_scalar(q);
        prop_assert_eq!(kernel.len(), scalar.len());
        for (a, b) in kernel.iter().zip(&scalar) {
            prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
    }
}

/// The all-dead mask must silence the kernel entirely (a fully-tombstoned
/// bucket reports nothing) — pinned as a plain test so it can't be shrunk
/// away.
#[test]
fn all_dead_mask_reports_nothing() {
    let pts: Vec<Point> = (0..129)
        .map(|i| Point::new(f64::from(i % 16), f64::from(i / 16)))
        .collect();
    let slab = PointSlab::from_points(pts.iter().copied());
    let alive = vec![0u64; pts.len().div_ceil(64)];
    let hits = hits_of(|f| slab.for_each_in_disk_masked(Point::new(0.0, 0.0), 1e9, &alive, f));
    assert!(hits.is_empty());
    let full = bitmap_filled(pts.len(), true);
    let hits = hits_of(|f| slab.for_each_in_disk_masked(Point::new(0.0, 0.0), 1e9, &full, f));
    assert_eq!(hits.len(), pts.len());
}
