//! Cross-engine consistency for `NN≠0` queries: every engine (brute-force
//! Lemma 2.1, the Theorem 3.1/3.2 index structures, and the diagram) must
//! return identical answers on identical inputs — including the paper's
//! adversarial lower-bound families and degenerate configurations.

use uncertain_geom::{Circle, Point};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint, DiskSet};
use uncertain_nn::nonzero::{
    nonzero_nn_discrete, nonzero_nn_disks, DiscreteNonzeroIndex, DiskNonzeroIndex,
};
use uncertain_nn::vnz::{constructions, NonzeroVoronoiDiagram};
use uncertain_nn::workload;

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

#[test]
fn disk_engines_agree_on_random_instances() {
    for seed in 0..6u64 {
        let set = workload::random_disk_set(60, 0.1, 3.0, seed);
        let disks = set.regions();
        let index = DiskNonzeroIndex::build(&set);
        let diagram = NonzeroVoronoiDiagram::build(disks.clone());
        for q in workload::random_queries(120, 70.0, seed + 1000) {
            let brute = sorted(nonzero_nn_disks(&disks, q));
            assert_eq!(brute, sorted(index.query(q)), "index mismatch at {q}");
            assert_eq!(brute, sorted(diagram.query(q)), "diagram mismatch at {q}");
            assert!(!brute.is_empty(), "NN≠0 can never be empty for n ≥ 1");
        }
    }
}

#[test]
fn disk_engines_agree_on_lower_bound_families() {
    let families: Vec<Vec<Circle>> = vec![
        constructions::theorem_2_7(2).0,
        constructions::theorem_2_8(3).0,
        constructions::theorem_2_10_lower(4).0,
    ];
    for disks in families {
        let set = DiskSet::uniform(disks.clone());
        let index = DiskNonzeroIndex::build(&set);
        for q in workload::random_queries(150, 30.0, 9) {
            let brute = sorted(nonzero_nn_disks(&disks, q));
            assert_eq!(brute, sorted(index.query(q)), "at {q}");
        }
    }
}

#[test]
fn discrete_engines_agree_on_random_instances() {
    for seed in 0..6u64 {
        let set = workload::random_discrete_set(50, 4, 6.0, seed);
        let index = DiscreteNonzeroIndex::build(&set);
        for q in workload::random_queries(120, 70.0, seed + 2000) {
            let brute = sorted(nonzero_nn_discrete(&set, q));
            assert_eq!(brute, sorted(index.query(q)), "at {q}");
            assert!(!brute.is_empty());
        }
    }
}

#[test]
fn certain_points_reduce_to_classical_voronoi() {
    // All-zero radii: NN≠0 is the classical nearest neighbor (away from
    // bisectors). Cross-check against a plain linear scan.
    let pts: Vec<Point> = workload::random_queries(80, 40.0, 5);
    let disks: Vec<Circle> = pts.iter().map(|&p| Circle::point(p)).collect();
    let set = DiskSet::uniform(disks.clone());
    let index = DiskNonzeroIndex::build(&set);
    for q in workload::random_queries(200, 50.0, 17) {
        let nn = pts
            .iter()
            .enumerate()
            .min_by(|a, b| q.dist(*a.1).partial_cmp(&q.dist(*b.1)).unwrap())
            .unwrap()
            .0;
        let got = index.query(q);
        assert_eq!(got, vec![nn], "classical NN mismatch at {q}");
    }
}

#[test]
fn mixed_certain_and_uncertain() {
    // A certain point inside another point's uncertainty disk.
    let disks = vec![
        Circle::new(Point::new(0.0, 0.0), 5.0),
        Circle::point(Point::new(1.0, 0.0)),
    ];
    let set = DiskSet::uniform(disks.clone());
    let index = DiskNonzeroIndex::build(&set);
    // Next to the certain point: both can be nearest (disk may materialize
    // arbitrarily close).
    assert_eq!(sorted(index.query(Point::new(1.1, 0.0))), vec![0, 1]);
    // Far outside the disk on the certain point's side: still both.
    assert_eq!(sorted(index.query(Point::new(20.0, 0.0))), vec![0, 1]);
    let brute = sorted(nonzero_nn_disks(&disks, Point::new(20.0, 0.0)));
    assert_eq!(brute, vec![0, 1]);
}

#[test]
fn duplicated_uncertain_points() {
    // Identical disks: both always participate (δ < Δ strictly since r > 0).
    let disks = vec![
        Circle::new(Point::new(0.0, 0.0), 2.0),
        Circle::new(Point::new(0.0, 0.0), 2.0),
        Circle::new(Point::new(30.0, 0.0), 1.0),
    ];
    let set = DiskSet::uniform(disks);
    let index = DiskNonzeroIndex::build(&set);
    assert_eq!(sorted(index.query(Point::new(-3.0, 0.0))), vec![0, 1]);
}

#[test]
fn nested_disks() {
    // D_1 strictly inside D_0's disk: for points far away, either can be
    // nearest; close to the inner disk's center both still compete.
    let disks = vec![
        Circle::new(Point::new(0.0, 0.0), 10.0),
        Circle::new(Point::new(1.0, 0.0), 1.0),
    ];
    let set = DiskSet::uniform(disks.clone());
    let index = DiskNonzeroIndex::build(&set);
    for q in workload::random_queries(60, 60.0, 3) {
        let brute = sorted(nonzero_nn_disks(&disks, q));
        assert_eq!(brute, sorted(index.query(q)), "at {q}");
        assert_eq!(brute, vec![0, 1], "nested disks always compete at {q}");
    }
}

#[test]
fn discrete_with_shared_locations() {
    // Two uncertain points sharing one location.
    let shared = Point::new(0.0, 0.0);
    let set = DiscreteSet::new(vec![
        DiscreteUncertainPoint::uniform(vec![shared, Point::new(4.0, 0.0)]),
        DiscreteUncertainPoint::uniform(vec![shared, Point::new(-4.0, 0.0)]),
        DiscreteUncertainPoint::certain(Point::new(0.0, 20.0)),
    ]);
    let index = DiscreteNonzeroIndex::build(&set);
    for q in workload::random_queries(80, 30.0, 11) {
        assert_eq!(
            sorted(nonzero_nn_discrete(&set, q)),
            sorted(index.query(q)),
            "at {q}"
        );
    }
}

#[test]
fn monotonicity_under_far_insertion() {
    // Adding a far-away point never *adds* members to NN≠0 near the origin.
    let base = workload::random_disk_set(20, 0.5, 2.0, 33);
    let mut extended = base.regions();
    extended.push(Circle::new(Point::new(500.0, 500.0), 1.0));
    let idx_base = DiskNonzeroIndex::build(&base);
    let idx_ext = DiskNonzeroIndex::from_disks(&extended);
    for q in workload::random_queries(100, 60.0, 4) {
        let a = sorted(idx_base.query(q));
        let b = sorted(idx_ext.query(q));
        assert_eq!(a, b, "far point changed NN≠0 at {q}");
    }
}
