//! Integration suite for the observability layer (`uncertain_obs`):
//! property tests for the log₂ histogram's bucket boundaries (every value
//! lands in exactly one bucket; boundaries are closed-lower/open-upper as
//! documented), plus an end-to-end check that serving a batch through
//! `uncertain_engine` populates the per-layer metrics the README's
//! Observability section promises.

use proptest::prelude::*;
use uncertain_obs::{bucket_index, bucket_upper, HIST_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_value_lands_in_exactly_one_bucket(v in 0u64..=u64::MAX) {
        let b = bucket_index(v);
        prop_assert!(b < HIST_BUCKETS);
        // Bucket b covers (bucket_upper(b-1), bucket_upper(b)]: membership
        // in b excludes membership in every other bucket.
        prop_assert!(v <= bucket_upper(b));
        if b > 0 {
            prop_assert!(v > bucket_upper(b - 1));
        }
    }

    #[test]
    fn powers_of_two_open_a_new_bucket(k in 0u32..64) {
        // 2^k is the closed lower edge of bucket k+1 — the value itself
        // lands there, and its predecessor lands one bucket below, so the
        // boundary belongs to exactly one bucket.
        let v = 1u64 << k;
        prop_assert_eq!(bucket_index(v), (k + 1) as usize);
        prop_assert_eq!(bucket_index(v - 1), k as usize);
    }
}

#[test]
fn engine_batch_populates_per_layer_metrics() {
    use uncertain_engine::{Engine, EngineConfig, QueryRequest};
    use uncertain_nn::workload;

    let set = workload::random_discrete_set(300, 3, 5.0, 11);
    let engine = Engine::new(set, EngineConfig::default());
    let batch: Vec<QueryRequest> = workload::random_queries(32, 60.0, 3)
        .into_iter()
        .flat_map(|q| {
            [
                QueryRequest::Nonzero { q },
                QueryRequest::Threshold { q, tau: 0.2 },
            ]
        })
        .collect();
    let resp = engine.run_batch(&batch);
    assert!(
        resp.stats
            .spans
            .iter()
            .any(|s| s.name.starts_with("engine.exec.") && s.count > 0),
        "ExecStats must attribute per-plan execution spans to the batch: {:?}",
        resp.stats.spans
    );
    assert!(resp
        .stats
        .spans
        .iter()
        .all(|s| !s.name.ends_with(".cycles")));

    let snap = uncertain_obs::MetricsSnapshot::capture();
    let hist_count = |n: &str| {
        snap.histograms
            .iter()
            .find(|(name, _)| *name == n)
            .map_or(0, |(_, h)| h.count())
    };
    let counter = |n: &str| {
        snap.counters
            .iter()
            .find(|(name, _)| *name == n)
            .map_or(0, |(_, v)| *v)
    };
    assert!(hist_count("engine.batch.wall") > 0);
    assert!(counter("engine.planner.plans") > 0);
    assert!(counter("engine.batch.requests") >= batch.len() as u64);

    // A second identical batch is all cache hits — the registry's cache
    // counters must reflect both the misses and the hits, and the planner
    // accumulates predicted-vs-observed history.
    engine.run_batch(&batch);
    let snap = uncertain_obs::MetricsSnapshot::capture();
    let counter = |n: &str| {
        snap.counters
            .iter()
            .find(|(name, _)| *name == n)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter("engine.cache.hits") > 0);
    assert!(counter("engine.cache.misses") > 0);
    assert!(counter("engine.cache.inserts") > 0);
    assert!(counter("engine.planner.predicted_units") > 0);
    assert!(counter("engine.planner.observed_ns") > 0);
}
