//! Filter-hit-rate acceptance test, isolated in its own test binary.
//!
//! The predicate counters are process-global, and the degeneracy gauntlet
//! (`tests/exactness_gauntlet.rs`) deliberately maximizes exact fallbacks
//! from concurrently running test threads — so the ≥ 99% acceptance
//! criterion is measured here, in a process whose only workload is the
//! random (non-degenerate) one being rated.

use uncertain_geom::predicates::predicate_stats;
use uncertain_geom::{Aabb, Point};
use uncertain_nn::vnz::DiscreteNonzeroDiagram;
use uncertain_nn::workload;
use uncertain_voronoi::Delaunay;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

#[test]
fn filter_hit_rate_dominates_on_random_inputs() {
    // Acceptance criterion: on random (non-degenerate) inputs the f64
    // filter answers ≥ 99% of adaptive predicate calls.
    let before = predicate_stats();

    let set = workload::random_discrete_set(8, 2, 6.0, 21);
    let bbox = Aabb::from_corners(p(-60.0, -60.0), p(60.0, 60.0));
    let d = DiscreteNonzeroDiagram::build(&set, &bbox);
    for q in workload::random_queries(20_000, 80.0, 22) {
        let _ = d.query_located(q);
    }

    let sites: Vec<Point> = workload::random_queries(400, 50.0, 23);
    let dt = Delaunay::build(&sites);
    for q in workload::random_queries(20_000, 60.0, 24) {
        let _ = dt.nearest_site(q);
    }

    let delta = predicate_stats().since(&before);
    assert!(
        delta.total() > 100_000,
        "expected a predicate-heavy workload, got {delta:?}"
    );
    assert!(
        delta.filter_hit_rate() >= 0.99,
        "filter hit rate {:.5} below 99% ({delta:?})",
        delta.filter_hit_rate()
    );
}
