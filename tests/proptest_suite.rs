//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning all workspace crates.

use proptest::prelude::*;
use uncertain_arrangement::segment::{segment_intersections, Segment};
use uncertain_arrangement::subdivision::{Subdivision, TaggedSegment};
use uncertain_engine::{quantize_point, snap_center, snap_radius, Engine, EngineConfig};
use uncertain_geom::apollonius::{tangent_circles, Tangency};
use uncertain_geom::hyperbola::PolarBranch;
use uncertain_geom::sec::smallest_enclosing_circle;
use uncertain_geom::{Circle, Point};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint};
use uncertain_nn::nonzero::{nonzero_nn_discrete, nonzero_nn_disks};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::SpiralSearch;
use uncertain_nn::vnz::GammaCurve;
use uncertain_spatial::{DiskIndex, KdTree, QuadTree};
use uncertain_voronoi::Delaunay;

fn pt() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn disk() -> impl Strategy<Value = Circle> {
    (pt(), 0.01f64..4.0).prop_map(|(c, r)| Circle::new(c, r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_nearest_matches_linear_scan(pts in prop::collection::vec(pt(), 1..120), q in pt()) {
        let tree = KdTree::from_points(&pts);
        let (_, _, d) = tree.nearest(q).unwrap();
        let brute = pts.iter().map(|&p| q.dist(p)).fold(f64::INFINITY, f64::min);
        prop_assert!((d - brute).abs() < 1e-12);
    }

    #[test]
    fn kdtree_range_is_exact(pts in prop::collection::vec(pt(), 1..120), q in pt(), r in 0.0f64..40.0) {
        let tree = KdTree::from_points(&pts);
        let mut got = tree.in_disk(q, r);
        got.sort_unstable();
        let mut brute: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, &p)| q.dist(p) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        brute.sort_unstable();
        prop_assert_eq!(got, brute);
    }

    #[test]
    fn quadtree_and_kdtree_agree(pts in prop::collection::vec(pt(), 1..150), q in pt(), k in 1usize..20) {
        let kd = KdTree::from_points(&pts);
        let qt = QuadTree::from_points(&pts);
        let a: Vec<f64> = kd.k_nearest(q, k).iter().map(|&(_, _, d)| d).collect();
        let b: Vec<f64> = qt.k_nearest(q, k).iter().map(|&(_, _, d)| d).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn disk_index_nonzero_equals_brute(disks in prop::collection::vec(disk(), 1..60), q in pt()) {
        let idx = DiskIndex::from_disks(&disks);
        let mut got: Vec<usize> = idx.nonzero_nn(q).into_iter().map(|i| i as usize).collect();
        got.sort_unstable();
        let mut brute = nonzero_nn_disks(&disks, q);
        brute.sort_unstable();
        prop_assert_eq!(got, brute);
    }

    #[test]
    fn sec_covers_and_is_minimal_radius(pts in prop::collection::vec(pt(), 1..40)) {
        let c = smallest_enclosing_circle(&pts).unwrap();
        for &p in &pts {
            prop_assert!(c.center.dist(p) <= c.radius + 1e-7 * (1.0 + c.radius));
        }
        // The SEC radius is at most half the diameter bound (any pair).
        let diam = pts
            .iter()
            .flat_map(|&a| pts.iter().map(move |&b| a.dist(b)))
            .fold(0.0f64, f64::max);
        prop_assert!(c.radius <= diam + 1e-9);
    }

    #[test]
    fn apollonius_solutions_satisfy_equations(
        c1 in disk(), c2 in disk(), c3 in disk(),
        s1 in prop::bool::ANY, s2 in prop::bool::ANY, s3 in prop::bool::ANY,
    ) {
        let sign = |b: bool| if b { Tangency::External } else { Tangency::Internal };
        let signs = [sign(s1), sign(s2), sign(s3)];
        let circles = [c1, c2, c3];
        for w in tangent_circles(circles, signs) {
            for (c, s) in circles.iter().zip(&signs) {
                let target = match s {
                    Tangency::External => w.radius + c.radius,
                    Tangency::Internal => w.radius - c.radius,
                };
                let resid = (w.center.dist(c.center) - target).abs();
                let scale = 1.0 + w.radius + c.center.to_vector().norm();
                prop_assert!(resid < 1e-5 * scale, "residual {} (scale {})", resid, scale);
            }
        }
    }

    #[test]
    fn polar_branch_points_satisfy_equation(d1 in disk(), d2 in disk(), f in 0.01f64..0.99) {
        if let Some(b) = PolarBranch::new(&d1, &d2) {
            let dom = b.domain();
            let t = dom.lo + dom.width() * f;
            let r = b.eval(t);
            if r.is_finite() && r < 1e6 {
                let p = b.point_at(t);
                let lhs = d1.min_dist(p);
                let rhs = d2.max_dist(p);
                prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs));
            }
        }
    }

    #[test]
    fn gamma_envelope_below_all_branches(
        disks in prop::collection::vec(disk(), 2..12),
        f in 0.0f64..1.0,
    ) {
        let theta = f * std::f64::consts::TAU;
        let c = GammaCurve::compute(&disks, 0);
        let env = c.eval(theta);
        for (j, dj) in disks.iter().enumerate().skip(1) {
            if let Some(b) = PolarBranch::new(&disks[0], dj) {
                let v = b.eval(theta);
                prop_assert!(
                    env <= v + 1e-6 * (1.0 + v.abs().min(1e9)),
                    "envelope above branch {} at θ={}", j, theta
                );
            }
        }
    }

    #[test]
    fn delaunay_nearest_site_is_exact(pts in prop::collection::vec(pt(), 3..60), q in pt()) {
        let dt = Delaunay::build(&pts);
        let got = dt.nearest_site(q).unwrap() as usize;
        let brute = pts
            .iter()
            .map(|&p| q.dist(p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((q.dist(pts[got]) - brute).abs() < 1e-9);
    }

    #[test]
    fn segment_intersections_are_on_both_segments(
        a in pt(), b in pt(), c in pt(), d in pt(),
    ) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        for (t, p) in segment_intersections(&s1, &s2) {
            prop_assert!((0.0..=1.0).contains(&t));
            // p must lie near both segments.
            let near = |s: &Segment, p: Point| {
                let tt = s.project_param(p).clamp(0.0, 1.0);
                s.at(tt).dist(p)
            };
            prop_assert!(near(&s1, p) < 1e-6);
            prop_assert!(near(&s2, p) < 1e-6);
        }
    }

    #[test]
    fn subdivision_euler_formula_consistency(
        segs in prop::collection::vec((pt(), pt()), 1..14),
    ) {
        let tagged: Vec<TaggedSegment> = segs
            .iter()
            .enumerate()
            .filter(|(_, (a, b))| a.dist(*b) > 1e-6)
            .map(|(i, &(a, b))| TaggedSegment {
                seg: Segment::new(a, b),
                curve: i as u32,
            })
            .collect();
        prop_assume!(!tagged.is_empty());
        let sub = Subdivision::build(&tagged, 1e-9);
        // Euler: F = E − V + C + 1 must be ≥ 1, and the number of positive
        // cycles (bounded faces) must equal F − 1.
        let f = sub.num_faces();
        prop_assert!(f >= 1);
        let bounded = sub.bounded_faces().len();
        prop_assert_eq!(bounded, f - 1, "V={} E={} C={}", sub.num_vertices(), sub.num_edges(), sub.num_components());
    }

    #[test]
    fn discrete_quantification_sums_to_one(
        clusters in prop::collection::vec((pt(), 0.1f64..5.0), 2..10),
        q in pt(),
    ) {
        let points: Vec<DiscreteUncertainPoint> = clusters
            .iter()
            .enumerate()
            .map(|(i, &(c, spread))| {
                let locs = vec![
                    Point::new(c.x - spread, c.y),
                    Point::new(c.x + spread, c.y + 0.1 * i as f64),
                ];
                DiscreteUncertainPoint::uniform(locs)
            })
            .collect();
        let set = DiscreteSet::new(points);
        let pi = quantification_discrete(&set, q);
        let total: f64 = pi.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Support condition.
        let nz = nonzero_nn_discrete(&set, q);
        for (i, &p) in pi.iter().enumerate() {
            if p > 1e-12 {
                prop_assert!(nz.contains(&i));
            }
        }
    }

    #[test]
    fn spiral_underestimates_with_any_budget(
        clusters in prop::collection::vec(pt(), 2..8),
        q in pt(),
        budget in 1usize..20,
    ) {
        let points: Vec<DiscreteUncertainPoint> = clusters
            .iter()
            .map(|&c| {
                DiscreteUncertainPoint::uniform(vec![
                    Point::new(c.x - 1.0, c.y),
                    Point::new(c.x + 1.0, c.y),
                ])
            })
            .collect();
        let set = DiscreteSet::new(points);
        let ss = SpiralSearch::build(&set);
        let exact = quantification_discrete(&set, q);
        let est = ss.estimate_with_budget(q, budget);
        for i in 0..set.len() {
            // Truncation can only lose probability mass.
            prop_assert!(est[i] <= exact[i] + 1e-9);
        }
    }

    #[test]
    fn cache_keys_stable_under_subgrid_perturbation(
        grid in 0.05f64..4.0,
        kx in -200i64..200,
        ky in -200i64..200,
        fx in -0.49f64..0.49,
        fy in -0.49f64..0.49,
    ) {
        // Any point strictly inside a cell snaps to the cell's key, and the
        // cell center round-trips exactly.
        let center = Point::new(kx as f64 * grid, ky as f64 * grid);
        prop_assert_eq!(quantize_point(center, grid), (kx, ky));
        let p = Point::new(center.x + fx * grid, center.y + fy * grid);
        prop_assert_eq!(quantize_point(p, grid), (kx, ky));
        // The snapped center is within the advertised snap radius.
        prop_assert!(p.dist(snap_center(p, grid)) <= snap_radius(grid) + 1e-9);
    }

    #[test]
    fn cached_answers_respect_widened_guarantee_slack(
        clusters in prop::collection::vec((pt(), 0.1f64..4.0), 2..8),
        q in pt(),
        grid in 0.1f64..1.5,
    ) {
        // A snapped cache cell serves one answer for every query in the
        // cell; its widened `Guarantee::slack()` must certifiably bound the
        // error against exact recomputation at the *actual* query point.
        let points: Vec<DiscreteUncertainPoint> = clusters
            .iter()
            .enumerate()
            .map(|(i, &(c, spread))| {
                DiscreteUncertainPoint::uniform(vec![
                    Point::new(c.x - spread, c.y + 0.07 * i as f64),
                    Point::new(c.x + spread, c.y),
                    Point::new(c.x, c.y + spread),
                ])
            })
            .collect();
        let set = DiscreteSet::new(points);
        let engine = Engine::new(
            set.clone(),
            EngineConfig {
                threads: Some(1),
                cache_grid: grid,
                ..EngineConfig::default()
            },
        );
        // First call computes and caches the cell; second serves the hit.
        let (pi_miss, g_miss) = engine.estimates(q);
        let (pi_hit, g_hit) = engine.estimates(q);
        prop_assert_eq!(&pi_miss, &pi_hit, "cache must not change answers");
        prop_assert_eq!(g_miss, g_hit);
        let exact = quantification_discrete(&set, q);
        let slack = g_hit.slack();
        for (i, (est, ex)) in pi_hit.iter().zip(&exact).enumerate() {
            prop_assert!(
                (est - ex).abs() <= slack + 1e-9,
                "π_{}: cached {} vs exact {} beyond widened slack {}",
                i, est, ex, slack
            );
        }
    }
}
