//! Cross-engine consistency for quantification probabilities: the exact
//! Eq. (2) sweep, the probabilistic Voronoi diagram (Theorem 4.2), Monte
//! Carlo (Theorem 4.3/4.5), and spiral search (Theorem 4.7) must agree
//! within their respective guarantees.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_geom::{Aabb, Circle, Point};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint, DiskSet};
use uncertain_nn::nonzero::nonzero_nn_discrete;
use uncertain_nn::quantification::exact::{
    quantification_continuous, quantification_discrete, quantification_discrete_sparse,
};
use uncertain_nn::quantification::monte_carlo::{MonteCarloPnn, SampleBackend};
use uncertain_nn::quantification::{ProbabilisticVoronoiDiagram, SpiralSearch};
use uncertain_nn::workload;

#[test]
fn probabilities_sum_to_one_and_respect_support() {
    for seed in 0..5u64 {
        let set = workload::random_discrete_set(20, 4, 6.0, seed);
        for q in workload::random_queries(40, 60.0, seed + 7) {
            let pi = quantification_discrete(&set, q);
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "Σπ = {total}");
            // π_i > 0 implies i ∈ NN≠0(q) (the support condition defining
            // the nonzero Voronoi diagram).
            let nz = nonzero_nn_discrete(&set, q);
            for (i, &p) in pi.iter().enumerate() {
                if p > 1e-12 {
                    assert!(nz.contains(&i), "π_{i} = {p} but {i} ∉ NN≠0 at {q}");
                }
            }
        }
    }
}

#[test]
fn vpr_equals_exact_everywhere_in_box() {
    let set = workload::random_discrete_set(6, 2, 8.0, 3);
    let bbox = Aabb::from_corners(Point::new(-40.0, -40.0), Point::new(40.0, 40.0));
    let vpr = ProbabilisticVoronoiDiagram::build(&set, &bbox);
    for q in workload::random_queries(300, 70.0, 8) {
        let exact = quantification_discrete(&set, q);
        let mut dense = vec![0.0; set.len()];
        for (i, p) in vpr.query(q) {
            dense[i] = p;
        }
        for i in 0..set.len() {
            assert!(
                (dense[i] - exact[i]).abs() < 1e-6,
                "π_{i} at {q}: vpr {} exact {}",
                dense[i],
                exact[i]
            );
        }
    }
}

#[test]
fn monte_carlo_and_spiral_bracket_exact() {
    let set = workload::random_discrete_set(25, 3, 5.0, 13);
    let mut rng = StdRng::seed_from_u64(17);
    let eps = 0.05;
    let mc = MonteCarloPnn::build_discrete(&set, 4000, SampleBackend::KdTree, &mut rng);
    let ss = SpiralSearch::build(&set);
    for q in workload::random_queries(30, 60.0, 21) {
        let exact = quantification_discrete(&set, q);
        let mc_est = mc.estimate_all(q);
        let sp_est = ss.estimate_all(q, eps);
        for i in 0..set.len() {
            assert!(
                (mc_est[i] - exact[i]).abs() <= eps,
                "MC error too large at {q}: {} vs {}",
                mc_est[i],
                exact[i]
            );
            let diff = exact[i] - sp_est[i];
            assert!(
                (-1e-9..=eps + 1e-9).contains(&diff),
                "spiral bound violated at {q}: {} vs {}",
                sp_est[i],
                exact[i]
            );
        }
    }
}

#[test]
fn continuous_engines_agree() {
    // Uniform disks: Eq. (1) quadrature vs Monte Carlo.
    let set = workload::random_disk_set(6, 0.5, 2.0, 23);
    let mut rng = StdRng::seed_from_u64(29);
    let mc = MonteCarloPnn::build_continuous(&set, 20_000, SampleBackend::KdTree, &mut rng);
    for q in workload::random_queries(5, 40.0, 31) {
        let exact = quantification_continuous(&set, q, 4096);
        let est = mc.estimate_all(q);
        for i in 0..set.len() {
            assert!(
                (est[i] - exact[i]).abs() < 0.02,
                "at {q}: MC {} vs quadrature {}",
                est[i],
                exact[i]
            );
        }
    }
}

#[test]
fn mixed_pdf_models_are_consistent() {
    // Truncated-Gaussian and ring pdfs: quadrature vs Monte Carlo.
    let set: DiskSet = workload::mixed_continuous_set(5, 41);
    let mut rng = StdRng::seed_from_u64(43);
    let mc = MonteCarloPnn::build_continuous(&set, 30_000, SampleBackend::KdTree, &mut rng);
    for q in workload::random_queries(3, 40.0, 47) {
        let exact = quantification_continuous(&set, q, 4096);
        let est = mc.estimate_all(q);
        for i in 0..set.len() {
            assert!(
                (est[i] - exact[i]).abs() < 0.03,
                "at {q}: MC {} vs quadrature {}",
                est[i],
                exact[i]
            );
        }
    }
}

#[test]
fn guaranteed_region_gives_probability_one() {
    // Inside the "guaranteed Voronoi" region of a far-isolated point, its
    // quantification probability is exactly 1.
    let set = DiscreteSet::new(vec![
        DiscreteUncertainPoint::uniform(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
        DiscreteUncertainPoint::uniform(vec![Point::new(100.0, 0.0), Point::new(101.0, 0.0)]),
    ]);
    let pi = quantification_discrete(&set, Point::new(0.5, 0.0));
    assert_eq!(pi[0], 1.0);
    assert_eq!(pi[1], 0.0);
}

#[test]
fn sparse_and_dense_views_agree() {
    let set = workload::random_discrete_set(15, 3, 5.0, 51);
    for q in workload::random_queries(20, 50.0, 53) {
        let dense = quantification_discrete(&set, q);
        let sparse = quantification_discrete_sparse(&set, q, 0.0);
        let mut rebuilt = vec![0.0; set.len()];
        for (i, p) in sparse {
            rebuilt[i] = p;
        }
        for i in 0..set.len() {
            assert!((dense[i] - rebuilt[i]).abs() < 1e-15);
        }
    }
}

#[test]
fn far_query_distances_remain_stable() {
    // The paper notes exact probabilities are "often unstable — a far away
    // point can affect these probabilities". The sweep must stay numerically
    // sane for far queries (no NaN, sums to 1).
    let set = workload::random_discrete_set(30, 3, 4.0, 61);
    for &scale in &[1e3, 1e6, 1e9] {
        let q = Point::new(scale, scale * 0.5);
        let pi = quantification_discrete(&set, q);
        assert!(pi.iter().all(|p| p.is_finite()));
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "Σπ = {total} at scale {scale}");
    }
}

#[test]
fn certain_point_at_query_takes_all() {
    let set = DiscreteSet::new(vec![
        DiscreteUncertainPoint::certain(Point::new(0.0, 0.0)),
        DiscreteUncertainPoint::uniform(vec![Point::new(5.0, 0.0), Point::new(-5.0, 0.0)]),
    ]);
    let pi = quantification_discrete(&set, Point::new(0.0, 0.0));
    assert_eq!(pi, vec![1.0, 0.0]);

    let disks = DiskSet::uniform(vec![
        Circle::point(Point::new(0.0, 0.0)),
        Circle::new(Point::new(5.0, 0.0), 1.0),
    ]);
    let pi = quantification_continuous(&disks, Point::new(0.1, 0.0), 512);
    assert!(pi[0] > 0.999, "{pi:?}");
}
