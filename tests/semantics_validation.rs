//! Validates the paper's *semantic characterizations* against brute-force
//! probability-space enumeration/sampling — the ground truth the geometry
//! is supposed to capture.
//!
//! * Lemma 2.1: `P_i ∈ NN≠0(q)` ⟺ some instantiation makes `P_i` the
//!   (unique) nearest neighbor;
//! * Eq. (2): `π_i(q)` equals the instantiation-space probability mass;
//! * the kNN extension: membership ⟺ some instantiation ranks `P_i ≤ k`;
//! * the guaranteed diagram: membership ⟺ *every* instantiation makes
//!   `P_i` nearest.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_geom::Point;
use uncertain_nn::model::DiskSet;
use uncertain_nn::nonzero::{nonzero_knn_disks, nonzero_nn_disks};
use uncertain_nn::vnz::GuaranteedVoronoi;
use uncertain_nn::workload;

/// Ranks of each uncertain point in one instantiation (0 = nearest).
fn ranks(instance: &[Point], q: Point) -> Vec<usize> {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| {
        q.dist(instance[a])
            .partial_cmp(&q.dist(instance[b]))
            .unwrap()
    });
    let mut rank = vec![0; instance.len()];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r;
    }
    rank
}

#[test]
fn lemma_2_1_matches_sampled_instantiations() {
    let set: DiskSet = workload::random_disk_set(10, 0.5, 2.5, 5);
    let disks = set.regions();
    let mut rng = StdRng::seed_from_u64(6);
    for q in workload::random_queries(15, 60.0, 7) {
        let members = nonzero_nn_disks(&disks, q);
        let mut achieved = vec![false; set.len()];
        for _ in 0..4000 {
            let inst = set.sample_instance(&mut rng);
            let r = ranks(&inst, q);
            for (i, &ri) in r.iter().enumerate() {
                if ri == 0 {
                    achieved[i] = true;
                }
            }
        }
        // Everything observed as NN must be a member (soundness — a strict
        // requirement); everything not in the member set must never win.
        for (i, &hit) in achieved.iter().enumerate() {
            if hit {
                assert!(
                    members.contains(&i),
                    "point {i} won the NN race but is not in NN≠0 at {q}"
                );
            }
            if !members.contains(&i) {
                assert!(!hit, "non-member {i} observed as NN at {q}");
            }
        }
    }
}

#[test]
fn knn_membership_matches_sampled_ranks_continuous() {
    let set: DiskSet = workload::random_disk_set(8, 0.5, 2.5, 11);
    let disks = set.regions();
    let mut rng = StdRng::seed_from_u64(12);
    let q = Point::new(2.0, -1.0);
    for k in [1usize, 2, 3] {
        let members = nonzero_knn_disks(&disks, q, k);
        let mut achieved = vec![false; set.len()];
        for _ in 0..6000 {
            let inst = set.sample_instance(&mut rng);
            let r = ranks(&inst, q);
            for (i, &ri) in r.iter().enumerate() {
                if ri < k {
                    achieved[i] = true;
                }
            }
        }
        for (i, &hit) in achieved.iter().enumerate() {
            if hit {
                assert!(
                    members.contains(&i),
                    "point {i} ranked < {k} but is not in kNN≠0"
                );
            }
        }
    }
}

#[test]
fn guaranteed_region_means_always_nearest() {
    let set: DiskSet = workload::random_disk_set(8, 0.4, 1.5, 21);
    let disks = set.regions();
    let gv = GuaranteedVoronoi::build(&disks);
    let mut rng = StdRng::seed_from_u64(22);
    let mut located = 0;
    for q in workload::random_queries(200, 70.0, 23) {
        let Some(i) = gv.locate(q) else { continue };
        located += 1;
        // Every instantiation must make P_i the nearest.
        for _ in 0..200 {
            let inst = set.sample_instance(&mut rng);
            let r = ranks(&inst, q);
            assert_eq!(
                r[i], 0,
                "guaranteed point {i} lost an instantiation race at {q}"
            );
        }
    }
    assert!(located > 0, "no query landed in any guaranteed region");
}

#[test]
fn quantification_matches_vote_frequencies() {
    use uncertain_nn::quantification::exact::quantification_continuous;
    let set: DiskSet = workload::random_disk_set(6, 0.8, 2.0, 31);
    let mut rng = StdRng::seed_from_u64(32);
    for q in workload::random_queries(4, 40.0, 33) {
        let exact = quantification_continuous(&set, q, 2048);
        let samples = 60_000;
        let mut votes = vec![0usize; set.len()];
        for _ in 0..samples {
            let inst = set.sample_instance(&mut rng);
            let r = ranks(&inst, q);
            for (i, &ri) in r.iter().enumerate() {
                if ri == 0 {
                    votes[i] += 1;
                }
            }
        }
        for i in 0..set.len() {
            let freq = votes[i] as f64 / samples as f64;
            assert!(
                (freq - exact[i]).abs() < 0.015,
                "π_{i} at {q}: quadrature {} vs vote frequency {freq}",
                exact[i]
            );
        }
    }
}
