//! The serving front-end's hostile-input gauntlet and panic-hardening
//! regression suite.
//!
//! Three layers of the same contract — "a bad request costs one typed
//! error (or a clean close), never a worker, a queue slot, or the next
//! batch":
//!
//! 1. **Wire level**: truncated frames, oversized length prefixes,
//!    garbage opcodes, NaN coordinates, and mid-frame disconnects each
//!    get the reply-then-close behavior `server::conn` documents, and the
//!    batch queue always drains back to zero.
//! 2. **Admission level**: a burst past the queue bound sheds with a
//!    typed `Shed` error while everything admitted is still answered.
//! 3. **Engine level**: a panicking query (NaN coordinates tripping a
//!    total-order assumption) in batch N yields `QueryResult::Failed` for
//!    exactly that request, and batch N+1 answers **bit-identical** to a
//!    fresh engine — the mutex-poison cascade regression.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use uncertain_engine::server::protocol::{self, op, Client, ErrorCode, Reply, Request, WireError};
use uncertain_engine::server::{Server, ServerConfig, ServerHandle};
use uncertain_engine::{Engine, EngineConfig, QueryRequest, QueryResult, Update};
use uncertain_geom::Point;
use uncertain_nn::model::DiscreteUncertainPoint;
use uncertain_nn::workload;

fn start_server(queue_bound: usize, window: Duration, max_batch: usize) -> ServerHandle {
    let set = workload::random_discrete_set(200, 3, 5.0, 17);
    let engine = Arc::new(Engine::new(set, EngineConfig::default()));
    Server::start(
        engine,
        ServerConfig {
            queue_bound,
            batch_window: window,
            max_batch,
            accept_threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn read_error_reply(s: &mut TcpStream) -> (ErrorCode, String) {
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let f = protocol::read_frame(s, protocol::REPLY_FRAME_MAX).expect("an error reply frame");
    match protocol::decode_reply(f.opcode, &f.body).expect("decodable reply") {
        Reply::Error { code, detail } => (code, detail),
        other => panic!("expected an error reply, got {other:?}"),
    }
}

fn assert_closed(s: &mut TcpStream) {
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut rest = Vec::new();
    let n = s.read_to_end(&mut rest).expect("clean close, not a hang");
    assert_eq!(n, 0, "server must close after a framing-level error");
}

/// Polls the handle until the batch queue is empty (all admitted requests
/// served) — the "no leaked queue slot" assertion.
fn assert_queue_drains(h: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while h.queue_depth() > 0 {
        assert!(Instant::now() < deadline, "queue never drained to 0");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn hostile_frames_get_typed_errors_or_clean_close() {
    let h = start_server(64, Duration::from_micros(200), 64);
    let addr = h.local_addr().to_string();

    // (a) Oversized length prefix: typed TooLarge reply, then close.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&(protocol::REQUEST_FRAME_MAX + 1).to_le_bytes())
            .unwrap();
        let (code, _) = read_error_reply(&mut s);
        assert_eq!(code, ErrorCode::TooLarge);
        assert_closed(&mut s);
    }

    // (b) Truncated frame (length promises 100 bytes, 3 arrive, then the
    // write side closes): clean close, no reply, no stuck reader.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        assert_closed(&mut s);
    }

    // (c) Garbage opcode: typed BadOpcode reply, then close.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&protocol::frame(3, 0x7F, &[])).unwrap();
        let (code, _) = read_error_reply(&mut s);
        assert_eq!(code, ErrorCode::BadOpcode);
        assert_closed(&mut s);
    }

    // (d) Malformed body (framing intact): typed Malformed reply and the
    // connection SURVIVES — a valid query on the same socket still works.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&protocol::frame(4, op::REQ_NONZERO, &[0u8; 3]))
            .unwrap();
        let (code, _) = read_error_reply(&mut s);
        assert_eq!(code, ErrorCode::Malformed);
        let valid = Request::Query(QueryRequest::Nonzero {
            q: Point::new(0.5, -0.5),
        });
        s.write_all(&protocol::encode_request(5, &valid)).unwrap();
        let f = protocol::read_frame(&mut s, protocol::REPLY_FRAME_MAX).unwrap();
        assert_eq!(f.req_id, 5);
        assert!(matches!(
            protocol::decode_reply(f.opcode, &f.body).unwrap(),
            Reply::Nonzero(_)
        ));
    }

    // (e) NaN coordinates are rejected at decode — they never reach the
    // engine's total-order-assuming kernels.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        let mut body = Vec::new();
        body.extend_from_slice(&f64::NAN.to_le_bytes());
        body.extend_from_slice(&1.0f64.to_le_bytes());
        s.write_all(&protocol::frame(6, op::REQ_NONZERO, &body))
            .unwrap();
        let (code, _) = read_error_reply(&mut s);
        assert_eq!(code, ErrorCode::Malformed);
    }

    // (f) Mid-frame disconnect: drop the socket after a partial frame.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&50u32.to_le_bytes()).unwrap();
        s.write_all(&[9, 9]).unwrap();
        drop(s);
    }

    // After the storm, the serving path is intact: a fresh client gets
    // real answers and the queue drains to zero (no leaked slots).
    let mut c = Client::connect(&addr).unwrap();
    for i in 0..20 {
        let rep = c
            .call(&Request::Query(QueryRequest::TopK {
                q: Point::new(i as f64 - 10.0, 3.0),
                k: 3,
            }))
            .expect("post-storm queries still answered");
        assert!(matches!(rep, Reply::Ranked { .. }), "got {rep:?}");
    }
    assert_queue_drains(&h);
    h.shutdown();
}

#[test]
fn overload_sheds_with_typed_error_and_queue_drains() {
    // Bound 2, slow 50 ms window, tiny batches: a 40-query burst must
    // overflow admission while everything admitted is still served.
    let h = start_server(2, Duration::from_millis(50), 4);
    let addr = h.local_addr().to_string();
    let shed_before = uncertain_obs::registry().counter("server.shed").get();

    let client = Client::connect(&addr).unwrap();
    let (mut tx, mut rx) = client.split().unwrap();
    let burst = 40;
    for i in 0..burst {
        tx.send(&Request::Query(QueryRequest::Nonzero {
            q: Point::new(i as f64, 0.0),
        }))
        .unwrap();
    }
    tx.finish();

    let (mut answered, mut shed) = (0u32, 0u32);
    loop {
        match rx.recv() {
            Ok((_, Reply::Nonzero(_))) => answered += 1,
            Ok((
                _,
                Reply::Error {
                    code: ErrorCode::Shed,
                    ..
                },
            )) => shed += 1,
            Ok((_, other)) => panic!("unexpected reply {other:?}"),
            Err(WireError::Eof) => break,
            Err(e) => panic!("transport error: {e}"),
        }
    }
    assert_eq!(
        answered + shed,
        burst,
        "every request gets exactly one reply"
    );
    assert!(shed > 0, "a 40-burst against bound 2 must shed");
    assert!(answered > 0, "admitted requests must still be served");
    let shed_after = uncertain_obs::registry().counter("server.shed").get();
    assert!(
        shed_after - shed_before >= u64::from(shed),
        "server.shed counter must record the sheds"
    );
    assert_queue_drains(&h);
    h.shutdown();
}

#[test]
fn apply_storm_never_blocks_in_flight_reads() {
    let h = start_server(1024, Duration::from_micros(200), 256);
    let addr = h.local_addr().to_string();

    // One connection hammers epoch-publishing applies...
    let writer_addr = addr.clone();
    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(&writer_addr).unwrap();
        let mut last_epoch = 0;
        for round in 0..20u64 {
            let updates = vec![
                Update::Insert(DiscreteUncertainPoint::certain(Point::new(
                    round as f64,
                    -(round as f64),
                ))),
                Update::Remove(round as usize),
            ];
            match c.call(&Request::Apply(updates)) {
                Ok(Reply::Apply { epoch, .. }) => last_epoch = epoch,
                other => panic!("apply reply: {other:?}"),
            }
        }
        last_epoch
    });

    // ...while this one keeps reading. Every query must be answered —
    // epoch handoff means apply storms never block in-flight reads.
    let mut c = Client::connect(&addr).unwrap();
    for i in 0..60 {
        let rep = c
            .call(&Request::Query(QueryRequest::Nonzero {
                q: Point::new((i % 11) as f64 - 5.0, (i % 7) as f64 - 3.0),
            }))
            .expect("reads survive the apply storm");
        assert!(matches!(rep, Reply::Nonzero(_)), "got {rep:?}");
    }
    let last_epoch = writer.join().unwrap();
    assert_eq!(last_epoch, 20, "each apply publishes one epoch");
    assert_queue_drains(&h);
    h.shutdown();
}

/// The poison-cascade regression (ISSUE acceptance): a panicking query in
/// batch N must (1) fail only itself, and (2) leave the engine serving
/// batch N+1 **bit-identical** to a fresh engine — locks recovered,
/// nothing cached from the poisoned evaluation, workers alive.
#[test]
fn panicking_query_leaves_next_batch_bit_identical() {
    for threads in [1usize, 4] {
        let set = workload::random_discrete_set(150, 3, 5.0, 9);
        let config = EngineConfig {
            threads: Some(threads),
            ..EngineConfig::default()
        };
        let engine = Engine::new(set.clone(), config);

        // Batch N: valid queries around one poisoned NaN request.
        let queries = workload::random_queries(24, 60.0, 11);
        let mut batch_n: Vec<QueryRequest> = queries
            .iter()
            .map(|&q| QueryRequest::TopK { q, k: 3 })
            .collect();
        let poison_idx = 7;
        batch_n.insert(
            poison_idx,
            QueryRequest::TopK {
                q: Point::new(f64::NAN, 0.0),
                k: 3,
            },
        );
        let resp = engine.run_batch(&batch_n);
        assert_eq!(resp.results.len(), batch_n.len());
        for (i, res) in resp.results.iter().enumerate() {
            if i == poison_idx {
                assert!(
                    matches!(res, QueryResult::Failed { .. }),
                    "[threads={threads}] NaN query must fail typed, got {res:?}"
                );
            } else {
                assert!(
                    !matches!(res, QueryResult::Failed { .. }),
                    "[threads={threads}] request {i} must not be collateral damage"
                );
            }
        }

        // Batch N+1 vs a fresh engine: bit-identical or the panic leaked
        // state (a poisoned lock, a cleared structure, a cached Failed).
        let batch_n1: Vec<QueryRequest> = queries
            .iter()
            .flat_map(|&q| {
                [
                    QueryRequest::Nonzero { q },
                    QueryRequest::Threshold { q, tau: 0.25 },
                    QueryRequest::TopK { q, k: 5 },
                ]
            })
            .collect();
        let got = engine.run_batch(&batch_n1).results;
        let fresh = Engine::new(set, config);
        let want = fresh.run_batch(&batch_n1).results;
        assert_eq!(
            got, want,
            "[threads={threads}] batch N+1 diverged from a fresh engine"
        );
    }
}

#[test]
fn shutdown_is_prompt_and_idempotent() {
    let h = start_server(64, Duration::from_micros(200), 64);
    let addr = h.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert!(matches!(c.call(&Request::Ping), Ok(Reply::Pong)));
    let t0 = Instant::now();
    h.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown must not hang on live connections"
    );
}
