//! Sharded-vs-monolithic differential harness: proptest-generated
//! interleavings of insert / remove / move are applied **identically** to a
//! monolithic [`Engine`] and to [`ShardedEngine`]s at S ∈ {1, 3, 8}, and
//! after every op a mixed batch (`NN≠0`, Threshold, TopK) is served by all
//! four — every sharded answer must be **bit-identical** to the monolithic
//! one (ids equal, probability bits equal, guarantees equal), and the
//! apply reports must assign the same ids and agree on live counts.
//!
//! Why this must hold (the scatter-gather proofs live with
//! `uncertain_nn::dynamic::shard::ShardedReader`): the `NN≠0` two-min fold
//! over per-shard triples is partition-independent, the quantification
//! k-way merge over per-shard streams reproduces the monolithic sweep's
//! entry sequence exactly, and both engines evaluate the same exact
//! quantifiers — so any divergence is a real bug, not float noise.
//!
//! CI's `shard-gauntlet` job runs this suite at default cases and again at
//! `PROPTEST_CASES=2048` pinned to one worker.

use proptest::prelude::*;
use uncertain_engine::shard::{PartitionerKind, ShardedEngine};
use uncertain_engine::{Engine, EngineConfig, QueryRequest, QueryResult, SiteId, Update};
use uncertain_geom::Point;
use uncertain_nn::model::DiscreteUncertainPoint;
use uncertain_nn::workload;

/// One encoded operation: `(selector, x, y, dx, dy, w)`.
type RawOp = (u8, f64, f64, f64, f64, f64);

fn raw_op() -> impl Strategy<Value = RawOp> {
    (
        0u8..=3,
        -30.0f64..30.0,
        -30.0f64..30.0,
        -8.0f64..8.0,
        -8.0f64..8.0,
        0.05f64..1.0,
    )
}

/// Decodes one op into an update batch, choosing remove/move victims from
/// the tracked live-id list (so the harness knows exactly what it asked
/// for, independent of either engine).
fn op_to_updates(op: RawOp, live: &[SiteId]) -> Vec<Update> {
    let (sel, x, y, dx, dy, w) = op;
    match sel {
        0 => vec![Update::Insert(DiscreteUncertainPoint::new(
            vec![Point::new(x, y), Point::new(x + dx, y + dy)],
            vec![w, 1.05 - w],
        ))],
        1 => vec![Update::Insert(DiscreteUncertainPoint::certain(Point::new(
            x, y,
        )))],
        2 if live.len() > 1 => {
            let victim = (w * live.len() as f64) as usize % live.len();
            vec![Update::Remove(live[victim])]
        }
        _ if !live.is_empty() => {
            let victim = ((w + dx.abs()) * live.len() as f64) as usize % live.len();
            vec![Update::Move {
                id: live[victim],
                to: DiscreteUncertainPoint::uniform(vec![
                    Point::new(x, y),
                    Point::new(x + dx, y + dy),
                    Point::new(x - dy, y + dx),
                ]),
            }]
        }
        _ => vec![],
    }
}

/// Maintains the harness's own live-id list from the updates it issued.
fn track(live: &mut Vec<SiteId>, updates: &[Update], inserted: &[SiteId]) {
    let mut fresh = inserted.iter();
    for u in updates {
        match u {
            Update::Insert(_) => live.push(*fresh.next().expect("one id per insert")),
            Update::Remove(id) => live.retain(|x| x != id),
            Update::Move { .. } => {}
        }
    }
}

fn mixed_batch(queries: &[Point]) -> Vec<QueryRequest> {
    let mut batch = Vec::with_capacity(3 * queries.len());
    for &q in queries {
        batch.push(QueryRequest::Nonzero { q });
        batch.push(QueryRequest::Threshold { q, tau: 0.2 });
        batch.push(QueryRequest::TopK { q, k: 4 });
    }
    batch
}

/// Bitwise answer comparison: ids equal, probability *bits* equal,
/// guarantees equal.
fn assert_bit_identical(
    shards: usize,
    got: &QueryResult,
    want: &QueryResult,
) -> Result<(), TestCaseError> {
    match (got, want) {
        (QueryResult::Nonzero(g), QueryResult::Nonzero(w)) => {
            prop_assert_eq!(g, w, "NN≠0 diverged at S={}", shards);
        }
        (
            QueryResult::Ranked {
                items: g,
                guarantee: gg,
            },
            QueryResult::Ranked {
                items: w,
                guarantee: wg,
            },
        ) => {
            prop_assert_eq!(gg, wg, "guarantee diverged at S={}", shards);
            prop_assert_eq!(g.len(), w.len(), "ranked length diverged at S={}", shards);
            for (&(gi, gp), &(wi, wp)) in g.iter().zip(w.iter()) {
                prop_assert_eq!(gi, wi, "ranked id diverged at S={}", shards);
                prop_assert_eq!(
                    gp.to_bits(),
                    wp.to_bits(),
                    "π bits diverged at S={}: sharded {} vs monolithic {}",
                    shards,
                    gp,
                    wp
                );
            }
        }
        other => prop_assert!(false, "result shape mismatch at S={shards}: {other:?}"),
    }
    Ok(())
}

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];

/// `ratio ≤ 0` keeps rebalancing off (and `Hash` ignores it entirely).
fn sharded_config(shards: usize, partitioner: PartitionerKind, ratio: f64) -> EngineConfig {
    EngineConfig {
        shards: Some(shards),
        partitioner,
        rebalance_ratio: ratio,
        ..EngineConfig::default()
    }
}

fn run_differential(
    ops: &[RawOp],
    n0: usize,
    seed: u64,
    partitioner: PartitionerKind,
    ratio: f64,
) -> Result<(), TestCaseError> {
    let base = workload::random_discrete_set(n0, 3, 5.0, seed);
    let mono = Engine::new(base.clone(), EngineConfig::default());
    let sharded: Vec<ShardedEngine> = SHARD_COUNTS
        .iter()
        .map(|&s| ShardedEngine::new(base.clone(), sharded_config(s, partitioner, ratio)))
        .collect();
    let mut live: Vec<SiteId> = (0..n0).collect();
    let fixed_queries = workload::random_queries(2, 60.0, seed ^ 1);

    for &op in ops {
        let updates = op_to_updates(op, &live);
        let report = mono.apply(&updates);
        for (engine, &s) in sharded.iter().zip(&SHARD_COUNTS) {
            let sr = engine.apply(&updates);
            prop_assert_eq!(
                &sr.inserted,
                &report.inserted,
                "id assignment diverged at S={}",
                s
            );
            prop_assert_eq!(sr.removed, report.removed, "removed diverged at S={}", s);
            prop_assert_eq!(sr.moved, report.moved, "moved diverged at S={}", s);
            prop_assert_eq!(sr.missed, report.missed, "missed diverged at S={}", s);
            prop_assert_eq!(sr.live, report.live, "live diverged at S={}", s);
            prop_assert_eq!(sr.shard_epochs.len(), s);
        }
        track(&mut live, &updates, &report.inserted);

        // Query at the op's own coordinates (adversarially close to the
        // mutated site) plus two fixed far-field points.
        let (_, x, y, dx, dy, _) = op;
        let batch = mixed_batch(&[
            Point::new(x, y),
            Point::new(x + dx, y + dy),
            fixed_queries[0],
            fixed_queries[1],
        ]);
        let want = mono.run_batch(&batch);
        for (engine, &s) in sharded.iter().zip(&SHARD_COUNTS) {
            let got = engine.run_batch(&batch);
            prop_assert_eq!(got.results.len(), want.results.len());
            for (g, w) in got.results.iter().zip(&want.results) {
                assert_bit_identical(s, g, w)?;
            }
            // The serving-state stats must agree with the monolithic view.
            prop_assert_eq!(got.stats.live_sites, want.stats.live_sites);
            prop_assert_eq!(got.stats.shard_stats.len(), s);
            prop_assert_eq!(
                got.stats
                    .shard_stats
                    .iter()
                    .map(|st| st.live)
                    .sum::<usize>(),
                want.stats.live_sites
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: at S ∈ {1, 3, 8}, every answer of every
    /// family is bit-identical to the monolithic engine after every op.
    #[test]
    fn sharded_engines_match_monolithic_after_every_op(
        ops in prop::collection::vec(raw_op(), 1..14),
    ) {
        run_differential(&ops, 10, 0x5AAD, PartitionerKind::Hash, 0.0)?;
    }

    /// Same property starting from an empty universe: the first inserts
    /// land in (generally) different shards and the id allocator must stay
    /// in lockstep with the monolithic engine's.
    #[test]
    fn sharded_engines_match_monolithic_from_empty(
        ops in prop::collection::vec(raw_op(), 1..10),
    ) {
        run_differential(&ops, 0, 0x5AAD ^ 0xFF, PartitionerKind::Hash, 0.0)?;
    }

    /// The same interleavings under the **spatial** partitioner, with an
    /// aggressive rebalance ratio so migrations fire mid-stream: routing,
    /// the cross-shard move rewrite, and rebalance rounds must all leave
    /// every answer bit-identical to the monolithic engine after every op.
    /// (The larger seed set keeps the live count above the rebalancer's
    /// minimum, so the trigger is actually armed.)
    #[test]
    fn spatial_engines_match_monolithic_after_every_op(
        ops in prop::collection::vec(raw_op(), 1..14),
    ) {
        run_differential(&ops, 40, 0x5AAD ^ 0xA0, PartitionerKind::Spatial, 1.2)?;
    }

    /// Spatial from an empty universe: the first inserts all route through
    /// the degenerate (empty-cloud) split tree until the first rebalance
    /// re-cuts it.
    #[test]
    fn spatial_engines_match_monolithic_from_empty(
        ops in prop::collection::vec(raw_op(), 1..10),
    ) {
        run_differential(&ops, 0, 0x5AAD ^ 0xAF, PartitionerKind::Spatial, 1.2)?;
    }
}

/// A longer deterministic churn stream (bigger n, no proptest): batches of
/// several updates per apply — straddling multiple shards — checked every
/// round, so deeper Bentley–Saxe carries and per-shard compactions surface
/// even if the short proptest sequences miss them.
#[test]
fn long_straddling_churn_stays_bit_identical() {
    let base = workload::random_discrete_set(48, 3, 5.0, 0x51AB);
    let mono = Engine::new(base.clone(), EngineConfig::default());
    let sharded: Vec<ShardedEngine> = SHARD_COUNTS
        .iter()
        .map(|&s| {
            ShardedEngine::new(
                base.clone(),
                EngineConfig {
                    shards: Some(s),
                    ..EngineConfig::default()
                },
            )
        })
        .collect();
    let mut live: Vec<SiteId> = (0..48).collect();
    let queries = workload::random_queries(3, 60.0, 0x51AB ^ 2);
    let batch = mixed_batch(&queries);

    for round in 0usize..30 {
        // One straddling batch: two removes, one move, two inserts.
        let mut updates = vec![];
        for j in 0..2 {
            if !live.is_empty() {
                updates.push(Update::Remove(live[(round * 3 + j * 5) % live.len()]));
            }
        }
        if !live.is_empty() {
            updates.push(Update::Move {
                id: live[(round * 7 + 1) % live.len()],
                to: DiscreteUncertainPoint::certain(Point::new(
                    (round as f64 * 3.7) % 40.0 - 20.0,
                    (round as f64 * 5.3) % 40.0 - 20.0,
                )),
            });
        }
        for j in 0..2 {
            let v = (round * 2 + j) as f64;
            updates.push(Update::Insert(DiscreteUncertainPoint::uniform(vec![
                Point::new((v * 1.9) % 50.0 - 25.0, (v * 2.3) % 50.0 - 25.0),
                Point::new((v * 3.1) % 50.0 - 25.0, (v * 0.7) % 50.0 - 25.0),
            ])));
        }

        let report = mono.apply(&updates);
        let want = mono.run_batch(&batch);
        for (engine, &s) in sharded.iter().zip(&SHARD_COUNTS) {
            let sr = engine.apply(&updates);
            assert_eq!(sr.inserted, report.inserted, "ids diverged at S={s}");
            assert_eq!(sr.live, report.live, "live diverged at S={s}");
            // Shard epochs only ever advance, and only for touched shards.
            assert!(sr.touched.iter().all(|&t| t < s));
            let got = engine.run_batch(&batch);
            assert_eq!(
                got.results, want.results,
                "answers diverged at S={s} round {round}"
            );
        }
        track(&mut live, &updates, &report.inserted);
    }

    // End state: every sharded engine agrees with the monolithic flat view.
    let want_ids = mono.site_ids();
    for (engine, &s) in sharded.iter().zip(&SHARD_COUNTS) {
        assert_eq!(engine.site_ids(), want_ids, "live ids diverged at S={s}");
        assert_eq!(
            engine.live_set().points.len(),
            mono.live_set().points.len(),
            "flat view diverged at S={s}"
        );
    }
}

/// Deterministic spatial churn designed to *guarantee* rebalances: waves of
/// inserts pile into one corner of the plane (ballooning that corner's
/// shard), then drain while the next corner fills. Every round's answers
/// are bit-compared against the monolithic engine, and at the end each
/// multi-shard engine must have actually executed at least one rebalance —
/// so the migration path (remove+insert batches, same-generation publish)
/// is provably on the differential's critical path, not dead code.
#[test]
fn spatial_rebalances_fire_and_stay_bit_identical() {
    let base = workload::random_discrete_set(48, 3, 5.0, 0xB1A5);
    let mono = Engine::new(base.clone(), EngineConfig::default());
    let sharded: Vec<ShardedEngine> = SHARD_COUNTS
        .iter()
        .map(|&s| {
            ShardedEngine::new(
                base.clone(),
                sharded_config(s, PartitionerKind::Spatial, 1.5),
            )
        })
        .collect();
    let mut live: Vec<SiteId> = (0..48).collect();
    let queries = workload::random_queries(3, 90.0, 0xB1A5 ^ 2);
    let batch = mixed_batch(&queries);
    const CORNERS: [(f64, f64); 4] = [(80.0, 80.0), (-80.0, 80.0), (-80.0, -80.0), (80.0, -80.0)];
    let mut waves: Vec<Vec<SiteId>> = vec![];

    for round in 0usize..12 {
        let (cx, cy) = CORNERS[round % 4];
        let mut updates: Vec<Update> = (0..10)
            .map(|i| {
                let t = (round * 10 + i) as f64 * 0.61;
                Update::Insert(DiscreteUncertainPoint::uniform(vec![
                    Point::new(cx + 3.0 * t.cos(), cy + 3.0 * t.sin()),
                    Point::new(cx - 2.0 * t.sin(), cy + 2.0 * t.cos()),
                ]))
            })
            .collect();
        // Drain the wave from two rounds ago (keeps the live count bounded
        // while the *current* corner is always the heaviest).
        if round >= 2 {
            updates.extend(waves[round - 2].iter().map(|&id| Update::Remove(id)));
        }

        let report = mono.apply(&updates);
        let want = mono.run_batch(&batch);
        for (engine, &s) in sharded.iter().zip(&SHARD_COUNTS) {
            let sr = engine.apply(&updates);
            assert_eq!(sr.inserted, report.inserted, "ids diverged at S={s}");
            assert_eq!(sr.removed, report.removed, "removed diverged at S={s}");
            assert_eq!(sr.live, report.live, "live diverged at S={s}");
            let got = engine.run_batch(&batch);
            assert_eq!(
                got.results, want.results,
                "answers diverged at S={s} round {round}"
            );
        }
        waves.push(report.inserted.clone());
        track(&mut live, &updates, &report.inserted);
    }

    for (engine, &s) in sharded.iter().zip(&SHARD_COUNTS) {
        assert_eq!(engine.site_ids(), mono.site_ids(), "ids diverged at S={s}");
        if s > 1 {
            assert!(
                engine.rebalances() >= 1,
                "corner waves at S={s} never triggered a rebalance"
            );
        } else {
            // A single shard can never be imbalanced.
            assert_eq!(engine.rebalances(), 0);
        }
    }
}
