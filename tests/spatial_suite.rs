//! Dedicated integration suite for `uncertain_spatial` — the kd-tree,
//! quadtree, disk index, and group index the paper's query structures (and
//! now the dynamic Bentley–Saxe bucket layer) lean on. Every query is
//! property-tested against a linear scan, including degenerate inputs
//! (duplicate points from grid snapping, zero radii, all-dead filters).

use proptest::prelude::*;
use uncertain_geom::{Circle, Point};
use uncertain_spatial::{DiskIndex, GroupIndex, KdTree, QuadTree};

fn pt() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Points snapped to a coarse integer grid: duplicates and collinear runs
/// are common, exercising tie handling.
fn grid_pt() -> impl Strategy<Value = Point> {
    (-6i32..=6, -6i32..=6).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

fn disk() -> impl Strategy<Value = Circle> {
    (pt(), 0.0f64..5.0).prop_map(|(c, r)| Circle::new(c, r))
}

fn group() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- KdTree ----------------

    #[test]
    fn kdtree_nearest_and_knn_match_scan(pts in prop::collection::vec(pt(), 1..160), q in pt(), k in 1usize..24) {
        let tree = KdTree::from_points(&pts);
        prop_assert_eq!(tree.len(), pts.len());
        let mut dists: Vec<f64> = pts.iter().map(|&p| q.dist(p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (_, _, d) = tree.nearest(q).unwrap();
        prop_assert_eq!(d.to_bits(), dists[0].to_bits());
        let knn = tree.k_nearest(q, k);
        prop_assert_eq!(knn.len(), k.min(pts.len()));
        for (i, &(_, _, dk)) in knn.iter().enumerate() {
            prop_assert!((dk - dists[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn kdtree_range_reports_exactly_the_closed_disk(pts in prop::collection::vec(pt(), 1..160), q in pt(), r in 0.0f64..60.0) {
        let tree = KdTree::from_points(&pts);
        let mut got = tree.in_disk(q, r);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, &p)| q.dist(p) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_handles_degenerate_grids(pts in prop::collection::vec(grid_pt(), 1..80), q in grid_pt()) {
        // Duplicates and exact-on-boundary radii: the closed-disk contract
        // must hold bit-exactly.
        let tree = KdTree::from_points(&pts);
        let nearest = tree.nearest(q).unwrap().2;
        let brute = pts.iter().map(|&p| q.dist(p)).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(nearest.to_bits(), brute.to_bits());
        // Radius exactly at an existing distance: ≤ includes it.
        let r = brute;
        let got = tree.in_disk(q, r);
        let want = pts.iter().filter(|&&p| q.dist(p) <= r).count();
        prop_assert_eq!(got.len(), want);
        // The full nearest_iter stream is sorted and complete.
        let all: Vec<f64> = tree.nearest_iter(q).map(|(_, _, d)| d).collect();
        prop_assert_eq!(all.len(), pts.len());
        for w in all.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    // ---------------- QuadTree ----------------

    #[test]
    fn quadtree_matches_scan_and_kdtree(pts in prop::collection::vec(pt(), 1..160), q in pt(), k in 1usize..24) {
        let qt = QuadTree::from_points(&pts);
        let kd = KdTree::from_points(&pts);
        let (_, _, d) = qt.nearest(q).unwrap();
        let brute = pts.iter().map(|&p| q.dist(p)).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(d.to_bits(), brute.to_bits());
        let a: Vec<f64> = qt.k_nearest(q, k).iter().map(|&(_, _, d)| d).collect();
        let b: Vec<f64> = kd.k_nearest(q, k).iter().map(|&(_, _, d)| d).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    // ---------------- DiskIndex ----------------

    #[test]
    fn disk_index_min_max_and_report_match_scan(disks in prop::collection::vec(disk(), 1..80), q in pt(), bound in 0.0f64..80.0) {
        let idx = DiskIndex::from_disks(&disks);
        let mut maxes: Vec<f64> = disks.iter().map(|d| d.max_dist(q)).collect();
        maxes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (best, _, second) = idx.two_min_max_dist(q).unwrap();
        prop_assert!((best - maxes[0]).abs() < 1e-9);
        if disks.len() > 1 {
            prop_assert!((second - maxes[1]).abs() < 1e-9);
        } else {
            prop_assert!(second.is_infinite());
        }
        // Open-bound report: exactly the disks with δ < bound.
        let mut got = vec![];
        idx.for_each_with_min_dist_below(q, bound, |_, id| got.push(id));
        got.sort_unstable();
        let mut want: Vec<u32> = disks
            .iter()
            .enumerate()
            .filter(|(_, d)| d.min_dist(q) < bound)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn disk_index_k_min_max_prefix(disks in prop::collection::vec(disk(), 1..80), q in pt(), m in 1usize..12) {
        let idx = DiskIndex::from_disks(&disks);
        let got = idx.k_min_max_dist(q, m);
        let mut want: Vec<f64> = disks.iter().map(|d| d.max_dist(q)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), m.min(disks.len()));
        for (i, &(d, _)) in got.iter().enumerate() {
            prop_assert!((d - want[i]).abs() < 1e-9);
        }
    }

    // ---------------- GroupIndex ----------------

    #[test]
    fn group_index_two_min_max_matches_scan(groups in prop::collection::vec(group(), 1..60), q in pt()) {
        let idx = GroupIndex::build(&groups);
        let mut maxes: Vec<f64> = groups
            .iter()
            .map(|g| g.iter().map(|&p| q.dist(p)).fold(f64::NEG_INFINITY, f64::max))
            .collect();
        maxes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (best, id, second) = idx.two_min_max_dist(q).unwrap();
        prop_assert!((best - maxes[0]).abs() < 1e-9);
        if groups.len() > 1 {
            prop_assert!((second - maxes[1]).abs() < 1e-9);
        } else {
            prop_assert!(second.is_infinite());
        }
        // The reported id attains the minimum.
        let attained = groups[id as usize]
            .iter()
            .map(|&p| q.dist(p))
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((attained - best).abs() < 1e-9);
    }

    #[test]
    fn group_index_filtered_query_matches_filtered_scan(
        groups in prop::collection::vec(group(), 2..60),
        q in pt(),
        mask_seed in 0u64..1024,
    ) {
        let idx = GroupIndex::build(&groups);
        // A deterministic pseudo-random live mask from the seed.
        let live = |i: usize| (mask_seed >> (i % 10)) & 1 == 0;
        let mut maxes: Vec<f64> = groups
            .iter()
            .enumerate()
            .filter(|&(i, _)| live(i))
            .map(|(_, g)| g.iter().map(|&p| q.dist(p)).fold(f64::NEG_INFINITY, f64::max))
            .collect();
        maxes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got = idx.two_min_max_dist_where(q, |id| live(id as usize));
        match (maxes.len(), got) {
            (0, None) => {}
            (0, Some(g)) => prop_assert!(false, "answered {:?} with all groups dead", g),
            (_, None) => prop_assert!(false, "no answer with {} live groups", maxes.len()),
            (n, Some((best, id, second))) => {
                prop_assert!(live(id as usize), "reported a dead group");
                prop_assert!((best - maxes[0]).abs() < 1e-9);
                if n > 1 {
                    prop_assert!((second - maxes[1]).abs() < 1e-9);
                } else {
                    prop_assert!(second.is_infinite());
                }
            }
        }
    }
}

// ---------------- deterministic edge cases ----------------

#[test]
fn empty_structures_answer_empty() {
    let kd = KdTree::build(vec![]);
    assert!(kd.nearest(Point::new(0.0, 0.0)).is_none());
    assert!(kd.in_disk(Point::new(0.0, 0.0), 5.0).is_empty());
    let qt = QuadTree::build(vec![]);
    assert!(qt.nearest(Point::new(0.0, 0.0)).is_none());
    let di = DiskIndex::build(vec![]);
    assert!(di.two_min_max_dist(Point::new(0.0, 0.0)).is_none());
    assert!(di.nonzero_nn(Point::new(0.0, 0.0)).is_empty());
    let gi = GroupIndex::build(&[]);
    assert!(gi.two_min_max_dist(Point::new(0.0, 0.0)).is_none());
    assert!(gi
        .two_min_max_dist_where(Point::new(0.0, 0.0), |_| true)
        .is_none());
}

#[test]
fn duplicate_heavy_inputs_stay_consistent() {
    // 64 copies of 4 distinct points: payloads must all be retained and
    // range queries must count multiplicity.
    let distinct = [
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.0, 1.0),
        Point::new(1.0, 1.0),
    ];
    let items: Vec<(Point, u32)> = (0..64u32).map(|i| (distinct[i as usize % 4], i)).collect();
    let kd = KdTree::build(items.clone());
    assert_eq!(kd.in_disk(Point::new(0.0, 0.0), 0.0).len(), 16);
    assert_eq!(kd.in_disk(Point::new(0.5, 0.5), 2.0).len(), 64);
    let qt = QuadTree::build(items);
    let order: Vec<f64> = qt
        .nearest_iter(Point::new(0.0, 0.0))
        .map(|(_, _, d)| d)
        .collect();
    assert_eq!(order.len(), 64);
    assert_eq!(order[0], 0.0);
    assert_eq!(order[15], 0.0);
    assert!(order[16] > 0.0);
}

#[test]
fn group_index_single_live_group_reports_infinite_second() {
    let groups: Vec<Vec<Point>> = (0..12)
        .map(|i| vec![Point::new(i as f64, 0.0), Point::new(i as f64, 2.0)])
        .collect();
    let idx = GroupIndex::build(&groups);
    let q = Point::new(3.0, 1.0);
    let (_, id, second) = idx.two_min_max_dist_where(q, |g| g == 7).unwrap();
    assert_eq!(id, 7);
    assert!(second.is_infinite());
    // Filter narrowing is consistent with the unfiltered query.
    let (b_all, id_all, _) = idx.two_min_max_dist(q).unwrap();
    let (b_again, id_again, _) = idx.two_min_max_dist_where(q, |_| true).unwrap();
    assert_eq!(id_all, id_again);
    assert_eq!(b_all.to_bits(), b_again.to_bits());
}
