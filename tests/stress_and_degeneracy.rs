//! Failure injection and stress tests: pathological inputs that break naive
//! floating-point geometry — huge coordinate offsets, extreme radius ratios,
//! heavy overlap, grid degeneracies, near-tangencies. The invariants must
//! hold and nothing may panic.

use uncertain_geom::{Aabb, Circle, Point};
use uncertain_nn::model::{DiscreteSet, DiscreteUncertainPoint, DiskSet};
use uncertain_nn::nonzero::{nonzero_nn_disks, DiskNonzeroIndex};
use uncertain_nn::quantification::exact::quantification_discrete;
use uncertain_nn::quantification::SpiralSearch;
use uncertain_nn::vnz::vertices::vertex_residual;
use uncertain_nn::vnz::{DiscreteNonzeroDiagram, GuaranteedVoronoi, NonzeroVoronoiDiagram};
use uncertain_nn::workload;

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

#[test]
fn huge_coordinate_offsets() {
    // The same configuration translated by 10^8: combinatorics must match.
    let base = workload::random_disk_set(20, 0.5, 2.0, 3).regions();
    let offset = 1e8;
    let moved: Vec<Circle> = base
        .iter()
        .map(|d| {
            Circle::new(
                Point::new(d.center.x + offset, d.center.y + offset),
                d.radius,
            )
        })
        .collect();
    let d1 = NonzeroVoronoiDiagram::build(base.clone());
    let d2 = NonzeroVoronoiDiagram::build(moved.clone());
    // Vertex counts may differ by a few due to conditioning at 1e8, but the
    // query semantics must be identical.
    for q in workload::random_queries(100, 60.0, 4) {
        let q2 = Point::new(q.x + offset, q.y + offset);
        assert_eq!(
            sorted(d1.query(q)),
            sorted(d2.query(q2)),
            "translation changed NN≠0 at {q}"
        );
    }
    assert!(d2.num_vertices() > 0);
}

#[test]
fn extreme_radius_ratio() {
    // One giant disk among mites: everything stays finite and consistent.
    let mut disks = vec![Circle::new(Point::new(0.0, 0.0), 1e4)];
    for i in 0..15 {
        disks.push(Circle::new(
            Point::new(2e4 + 3.0 * i as f64, 10.0 * i as f64),
            1e-3,
        ));
    }
    let diagram = NonzeroVoronoiDiagram::build(disks.clone());
    for v in &diagram.vertices {
        assert!(v.point.is_finite());
        assert!(v.radius.is_finite());
        assert!(vertex_residual(&disks, v) < 1e-2, "residual blowup");
    }
    let idx = DiskNonzeroIndex::from_disks(&disks);
    for q in workload::random_queries(50, 5e4, 7) {
        assert_eq!(sorted(idx.query(q)), sorted(nonzero_nn_disks(&disks, q)));
    }
}

#[test]
fn all_disks_identical() {
    let disks = vec![Circle::new(Point::new(1.0, 1.0), 2.0); 12];
    let diagram = NonzeroVoronoiDiagram::build(disks.clone());
    // No curve exists (nobody ever excludes anybody): one face, all points.
    assert_eq!(diagram.complexity().faces, 1);
    let idx = DiskNonzeroIndex::from_disks(&disks);
    let got = idx.query(Point::new(50.0, -3.0));
    assert_eq!(got.len(), 12);
}

#[test]
fn concentric_disks() {
    let disks: Vec<Circle> = (1..=10)
        .map(|i| Circle::new(Point::new(0.0, 0.0), i as f64))
        .collect();
    let diagram = NonzeroVoronoiDiagram::build(disks.clone());
    let idx = DiskNonzeroIndex::from_disks(&disks);
    for q in workload::random_queries(60, 40.0, 5) {
        let brute = sorted(nonzero_nn_disks(&disks, q));
        assert_eq!(sorted(idx.query(q)), brute);
        assert_eq!(sorted(diagram.query(q)), brute);
        // The innermost disk always participates: δ_0 minimal.
        assert!(brute.contains(&0));
    }
}

#[test]
fn grid_of_tangent_disks() {
    // Unit disks at spacing exactly 2: every adjacent pair is tangent —
    // the |v| = a boundary case of the γ branches.
    let mut disks = vec![];
    for i in 0..5 {
        for j in 0..5 {
            disks.push(Circle::new(Point::new(2.0 * i as f64, 2.0 * j as f64), 1.0));
        }
    }
    let diagram = NonzeroVoronoiDiagram::build(disks.clone());
    for v in &diagram.vertices {
        assert!(vertex_residual(&disks, v) < 1e-5);
    }
    let idx = DiskNonzeroIndex::from_disks(&disks);
    for q in workload::random_queries(80, 20.0, 6) {
        assert_eq!(sorted(idx.query(q)), sorted(nonzero_nn_disks(&disks, q)));
    }
}

#[test]
fn discrete_diagram_collinear_locations() {
    // All locations on a line: K_ij polygons degenerate to halfplane-like
    // strips; the subdivision must stay Euler-consistent.
    let set = DiscreteSet::new(
        (0..5)
            .map(|i| {
                DiscreteUncertainPoint::uniform(vec![
                    Point::new(3.0 * i as f64, 0.0),
                    Point::new(3.0 * i as f64 + 1.0, 0.0),
                ])
            })
            .collect(),
    );
    let bbox = Aabb::from_corners(Point::new(-30.0, -30.0), Point::new(30.0, 30.0));
    let d = DiscreteNonzeroDiagram::build(&set, &bbox);
    let sub = &d.subdivision;
    assert_eq!(
        sub.num_faces(),
        sub.num_edges() + sub.num_components() + 1 - sub.num_vertices()
    );
    for f in &d.faces {
        let mut brute = set.nonzero_nn(f.sample);
        brute.sort_unstable();
        assert_eq!(f.label, brute);
    }
}

#[test]
fn spiral_with_extreme_weights() {
    // Weights spanning 6 orders of magnitude: the sweep must stay stable.
    let mut points = vec![];
    for i in 0..20 {
        let c = Point::new(5.0 * (i % 5) as f64, 5.0 * (i / 5) as f64);
        points.push(DiscreteUncertainPoint::new(
            vec![c, Point::new(c.x + 1.0, c.y), Point::new(c.x, c.y + 1.0)],
            vec![1e-6, 0.5, 0.5 - 1e-6],
        ));
    }
    let set = DiscreteSet::new(points);
    let ss = SpiralSearch::build(&set);
    for q in workload::random_queries(20, 30.0, 9) {
        let exact = quantification_discrete(&set, q);
        assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Full-budget spiral must reproduce the exact values.
        let est = ss.estimate_with_budget(q, set.total_locations());
        for i in 0..set.len() {
            assert!((exact[i] - est[i]).abs() < 1e-9);
        }
    }
}

#[test]
fn guaranteed_voronoi_on_lower_bound_families() {
    // The adversarial V≠0 families have tiny or empty guaranteed regions —
    // but must never panic or mis-locate.
    for disks in [
        uncertain_nn::vnz::constructions::theorem_2_8(3).0,
        uncertain_nn::vnz::constructions::theorem_2_10_lower(3).0,
    ] {
        let gv = GuaranteedVoronoi::build(&disks);
        for q in workload::random_queries(100, 20.0, 3) {
            if let Some(i) = gv.locate(q) {
                // Located ⇒ singleton NN≠0.
                let nn = nonzero_nn_disks(&disks, q);
                assert_eq!(nn, vec![i], "guaranteed region mismatch at {q}");
            }
        }
    }
}

#[test]
fn micro_radii_behave_like_points() {
    // Disks with radius 1e-12 behave combinatorially like certain points.
    let pts = workload::random_queries(30, 40.0, 11);
    let tiny: Vec<Circle> = pts.iter().map(|&p| Circle::new(p, 1e-12)).collect();
    let idx = DiskNonzeroIndex::from_disks(&tiny);
    for q in workload::random_queries(80, 50.0, 12) {
        let got = idx.query(q);
        let nn = pts
            .iter()
            .enumerate()
            .min_by(|a, b| q.dist(*a.1).partial_cmp(&q.dist(*b.1)).unwrap())
            .unwrap()
            .0;
        assert!(got.contains(&nn), "true NN missing at {q}");
        // Tiny radii can admit at most a couple of near-ties.
        assert!(got.len() <= 3, "too many candidates for micro radii");
    }
}

#[test]
fn single_and_empty_everything() {
    // Every structure handles n ∈ {0, 1} gracefully.
    let empty_disks: Vec<Circle> = vec![];
    assert!(NonzeroVoronoiDiagram::build(empty_disks.clone())
        .query(Point::new(0.0, 0.0))
        .is_empty());
    assert_eq!(GuaranteedVoronoi::build(&empty_disks).total_complexity(), 0);
    let one = vec![Circle::new(Point::new(0.0, 0.0), 1.0)];
    assert_eq!(
        NonzeroVoronoiDiagram::build(one.clone()).query(Point::new(9.0, 9.0)),
        vec![0]
    );
    assert_eq!(
        GuaranteedVoronoi::build(&one).locate(Point::new(9.0, 9.0)),
        Some(0)
    );
    let empty_set = DiskSet::default();
    assert!(DiskNonzeroIndex::build(&empty_set)
        .query(Point::new(0.0, 0.0))
        .is_empty());
}
