//! Offline stand-in for the subset of the `criterion` API this workspace uses.
//!
//! The build container cannot reach crates.io, so the four benches link
//! against this minimal harness instead of real Criterion. It implements the
//! same call surface (`Criterion::benchmark_group`, `sample_size`,
//! `bench_with_input`, `bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with honest wall-clock timing and a
//! plain-text report — no statistics, plots, or baselines.
//!
//! Environment knobs:
//! * `UNC_BENCH_SMOKE=1` — run each benchmark body exactly once (used by the
//!   `--smoke` flows and CI compile-and-run checks).

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Returns true when benches should do the minimum work that still exercises
/// every measured closure.
pub fn smoke_mode() -> bool {
    std::env::var("UNC_BENCH_SMOKE").map_or(false, |v| v != "0" && !v.is_empty())
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(BenchmarkId::from_parameter(""), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.samples());
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.samples());
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn samples(&self) -> usize {
        if smoke_mode() {
            1
        } else {
            self.sample_size
        }
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let label = if id.0.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.0)
        };
        match b.mean_seconds() {
            Some(mean) => println!(
                "{label:<48} {:>12} /iter  ({} iters)",
                fmt_time(mean),
                b.total_iters
            ),
            None => println!("{label:<48} (no measurement)"),
        }
    }
}

pub struct Bencher {
    samples: usize,
    total_secs: f64,
    total_iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total_secs: 0.0,
            total_iters: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up keeps first-touch costs out of the measurement.
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total_secs += t0.elapsed().as_secs_f64();
        self.total_iters += self.samples as u64;
    }

    fn mean_seconds(&self) -> Option<f64> {
        (self.total_iters > 0).then(|| self.total_secs / self.total_iters as f64)
    }
}

/// Accepts either a pre-built [`BenchmarkId`] or a plain string, mirroring
/// real criterion's `BenchmarkGroup::bench_function` signature.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_execute() {
        benches();
    }

    #[test]
    fn bencher_accumulates() {
        let mut b = Bencher::new(4);
        b.iter(|| 1 + 1);
        assert_eq!(b.total_iters, 4);
        assert!(b.mean_seconds().is_some());
    }
}
