//! Offline stand-in for the subset of the `criterion` API this workspace uses.
//!
//! The build container cannot reach crates.io, so the benches link against
//! this minimal harness instead of real Criterion. It implements the same
//! call surface (`Criterion::benchmark_group`, `sample_size`,
//! `bench_with_input`, `bench_function`, `Bencher::iter`,
//! `BenchmarkGroup::throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with honest wall-clock timing and a
//! plain-text report. Each iteration is timed individually, so the report
//! carries the **mean, median, and p95** per-iteration time (timer overhead,
//! ~tens of ns, is included — irrelevant for the µs-and-up bodies these
//! benches measure). A [`Throughput`] hook turns the mean into
//! elements/sec (queries/sec for the engine bench) or bytes/sec.
//!
//! Environment knobs:
//! * `UNC_BENCH_SMOKE=1` — run each benchmark body exactly once (used by the
//!   `--smoke` flows and CI compile-and-run checks).

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Returns true when benches should do the minimum work that still exercises
/// every measured closure.
pub fn smoke_mode() -> bool {
    std::env::var("UNC_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// What one iteration of a benchmark processes, for rate reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration handles this many items (queries, points, …).
    Elements(u64),
    /// One iteration handles this many bytes.
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(BenchmarkId::from_parameter(""), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration does; subsequent benchmarks in
    /// the group report a rate (elem/s or B/s) alongside the timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.samples());
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.samples());
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn samples(&self) -> usize {
        if smoke_mode() {
            1
        } else {
            self.sample_size
        }
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let label = if id.0.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.0)
        };
        match b.stats() {
            Some(s) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if s.mean > 0.0 => {
                        format!("  {:>14}", fmt_rate(n as f64 / s.mean, "elem/s"))
                    }
                    Some(Throughput::Bytes(n)) if s.mean > 0.0 => {
                        format!("  {:>14}", fmt_rate(n as f64 / s.mean, "B/s"))
                    }
                    _ => String::new(),
                };
                println!(
                    "{label:<48} mean {:>10}  med {:>10}  p95 {:>10}{rate}  ({} iters)",
                    fmt_time(s.mean),
                    fmt_time(s.median),
                    fmt_time(s.p95),
                    b.total_iters,
                );
            }
            None => println!("{label:<48} (no measurement)"),
        }
    }
}

/// Summary statistics over the individually-timed iterations.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    pub mean: f64,
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

pub struct Bencher {
    samples: usize,
    sample_secs: Vec<f64>,
    total_secs: f64,
    total_iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            sample_secs: Vec::with_capacity(samples),
            total_secs: 0.0,
            total_iters: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up keeps first-touch costs out of the measurement.
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            self.sample_secs.push(dt);
            self.total_secs += dt;
            self.total_iters += 1;
        }
    }

    fn mean_seconds(&self) -> Option<f64> {
        (self.total_iters > 0).then(|| self.total_secs / self.total_iters as f64)
    }

    fn stats(&self) -> Option<SampleStats> {
        let mean = self.mean_seconds()?;
        let mut sorted = self.sample_secs.clone();
        // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN sample (e.g. a
        // timer anomaly surfaced through arithmetic downstream) must not
        // panic the whole bench report; it sorts last and shows up as NaN.
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(SampleStats {
            mean,
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted nonempty slice:
/// `sorted[⌈p·n⌉ - 1]`, clamped into the slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let exact = p * sorted.len() as f64;
    // `p·n` often lands an ulp above the integer it mathematically equals
    // (0.07 × 100 = 7.000000000000001), and `ceil` then overshoots the
    // nearest rank by one. Snap to the nearest integer when within FP noise
    // before rounding up.
    let nearest = exact.round();
    let rank = if (exact - nearest).abs() <= 1e-9 * nearest.max(1.0) {
        nearest
    } else {
        exact.ceil()
    };
    let rank = (rank as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Accepts either a pre-built [`BenchmarkId`] or a plain string, mirroring
/// real criterion's `BenchmarkGroup::bench_function` signature.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_execute() {
        benches();
    }

    #[test]
    fn bencher_accumulates() {
        let mut b = Bencher::new(4);
        b.iter(|| 1 + 1);
        assert_eq!(b.total_iters, 4);
        assert!(b.mean_seconds().is_some());
        let s = b.stats().unwrap();
        assert!(s.mean > 0.0 && s.median > 0.0 && s.p95 >= s.median);
        assert_eq!(b.sample_secs.len(), 4);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 0.50), 5.0);
        assert_eq!(percentile(&xs, 0.95), 10.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
        assert_eq!(percentile(&[3.5], 0.5), 3.5);
        assert_eq!(percentile(&[3.5], 0.95), 3.5);
    }

    #[test]
    fn percentile_snaps_fp_noise_before_ceil() {
        // 0.07 × 100 evaluates to 7.000000000000001 in f64; naive ceil
        // reads rank 8 where nearest-rank says 7.
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.07), 7.0);
        // Sweep every integer percent over several sizes against the
        // integer-arithmetic ground truth ⌈p·n⌉ computed exactly.
        for n in [1usize, 2, 3, 10, 19, 100, 997] {
            let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            for pct in 1..=100u32 {
                let rank = (pct as usize * n).div_ceil(100).max(1);
                assert_eq!(
                    percentile(&xs, pct as f64 / 100.0),
                    rank as f64,
                    "p = {pct}%, n = {n}"
                );
            }
        }
    }

    #[test]
    fn percentile_tiny_samples() {
        // n = 1: every percentile is the sample.
        for p in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
        // n = 2: median is the first element (⌈0.5·2⌉ = 1), p95 the second.
        assert_eq!(percentile(&[1.0, 9.0], 0.50), 1.0);
        assert_eq!(percentile(&[1.0, 9.0], 0.95), 9.0);
        // p95 ≥ median must hold at every small n.
        for n in 1..20usize {
            let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            assert!(
                percentile(&xs, 0.95) >= percentile(&xs, 0.50),
                "p95 < median at n = {n}"
            );
        }
    }

    #[test]
    fn rate_formatting_scales() {
        assert_eq!(fmt_rate(1.5e9, "elem/s"), "1.50 Gelem/s");
        assert_eq!(fmt_rate(2.5e6, "elem/s"), "2.50 Melem/s");
        assert_eq!(fmt_rate(3.2e3, "B/s"), "3.20 KB/s");
        assert_eq!(fmt_rate(12.0, "B/s"), "12.0 B/s");
    }

    #[test]
    fn throughput_report_runs() {
        // Exercise the throughput-reporting path end to end.
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("rates");
        g.sample_size(2).throughput(Throughput::Bytes(1 << 20));
        g.bench_function("copy", |b| {
            let src = vec![0u8; 1 << 20];
            b.iter(|| src.clone());
        });
        g.finish();
    }
}
