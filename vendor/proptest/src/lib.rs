//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build container cannot reach crates.io, so `tests/proptest_suite.rs`
//! links against this minimal, fully deterministic property-testing harness
//! instead of real proptest. Supported surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, numeric-range strategies,
//!   tuple strategies (arity 2–6), [`collection::vec`], [`bool::ANY`];
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failure reports the case seed instead; re-running is
//!   exact because generation is deterministic.
//! * **Deterministic schedule.** Case seeds derive from a stable hash of
//!   (source file, test name, case index) — every run and every machine
//!   explores the same cases, which is what CI needs.
//! * **Persisted regressions.** Seeds listed in
//!   `<dir-of-test-file>/proptest-regressions/<file-stem>.txt` (lines of the
//!   form `cc <test_name> <hex-seed>`) are replayed first, before the random
//!   schedule. A new failure prints the exact line to append.
//! * `PROPTEST_CASES=<n>` in the environment overrides every test's case
//!   count (CI can crank coverage without touching source).

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`. Unlike real proptest there is
    /// no value tree / shrinking; a strategy just samples deterministically
    /// from the per-case RNG.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*}
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*}
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for an unbiased boolean (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;
    use std::path::{Path, PathBuf};

    /// Per-case deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property is false for this case: fail the test.
        Fail(String),
        /// `prop_assume!` rejected the inputs: skip, don't count the case.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            }
        }
    }

    /// Runner configuration; mirrors the fields of real proptest's
    /// `ProptestConfig` that this workspace touches.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required per property.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections per property.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Stable string hash (FNV-1a) so case schedules never depend on the
    /// platform's `DefaultHasher`.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn regression_file(source_file: &str) -> PathBuf {
        let p = Path::new(source_file);
        let dir = p.parent().unwrap_or_else(|| Path::new("."));
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("unknown");
        dir.join("proptest-regressions").join(format!("{stem}.txt"))
    }

    /// Seeds persisted for `test_name`, in file order. Lines look like
    /// `cc <test_name> <hex-seed>`; `#` starts a comment.
    fn persisted_seeds(source_file: &str, test_name: &str) -> Vec<u64> {
        let path = regression_file(source_file);
        let Ok(body) = std::fs::read_to_string(&path) else {
            return vec![];
        };
        body.lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    return None;
                }
                let mut parts = line.split_whitespace();
                (parts.next() == Some("cc") && parts.next() == Some(test_name))
                    .then(|| parts.next())
                    .flatten()
                    .and_then(|hex| u64::from_str_radix(hex.trim_start_matches("0x"), 16).ok())
            })
            .collect()
    }

    /// Drives one property: replays persisted regression seeds, then runs the
    /// deterministic case schedule. Panics (failing the enclosing `#[test]`)
    /// on the first falsified case, reporting its seed.
    pub fn run_property<F>(
        config: &ProptestConfig,
        source_file: &str,
        test_name: &str,
        mut property: F,
    ) where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(config.cases);

        let mut run_seed = |seed: u64, origin: &str| {
            let mut rng = TestRng::from_seed(seed);
            match property(&mut rng) {
                Ok(()) => true,
                Err(TestCaseError::Reject) => false,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{test_name}` falsified ({origin}, seed {seed:#018x})\n\
                     {msg}\n\
                     To persist this case, add the line\n\
                     \x20   cc {test_name} {seed:#018x}\n\
                     to {}",
                    regression_file(source_file).display(),
                ),
            }
        };

        for seed in persisted_seeds(source_file, test_name) {
            run_seed(seed, "persisted regression");
        }

        let base = fnv1a(source_file) ^ fnv1a(test_name).rotate_left(17);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u64;
        while accepted < cases {
            let seed = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            index += 1;
            if run_seed(seed, "scheduled case") {
                accepted += 1;
            } else {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property `{test_name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {accepted}/{cases} accepted cases)"
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop`, the module-alias bundle.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_property(
                &__config,
                file!(),
                stringify!($name),
                |__rng| {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __outcome
                },
            );
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("prop_assert! failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_eq! failed\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_ne! failed; both sides: {:?}",
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn floats_stay_in_range(x in -3.0f64..7.5) {
            prop_assert!((-3.0..7.5).contains(&x));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0usize..4, 1.0f64..2.0).prop_map(|(i, f)| i as f64 * f)) {
            prop_assert!((0.0..8.0).contains(&p));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in small_vec()) {
            prop_assert!(v.len() < 5);
            for &b in &v { prop_assert!(b < 10, "byte {} escaped range", b); }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn bools_take_both_values(a in prop::bool::ANY, b in prop::bool::ANY) {
            // Exercises the bool strategy end to end; coverage of both
            // values is checked in `schedule_is_deterministic`.
            prop_assert!(usize::from(a) <= 1);
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn persisted_seeds_are_replayed_first() {
        use crate::test_runner::{run_property, ProptestConfig};
        use std::io::Write;

        let dir = std::env::temp_dir().join("unc_proptest_stub_test");
        std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
        let source = dir.join("fake_suite.rs");
        let mut f = std::fs::File::create(dir.join("proptest-regressions/fake_suite.txt")).unwrap();
        writeln!(f, "# comment line").unwrap();
        writeln!(f, "cc my_prop 0x00000000000000ab").unwrap();
        writeln!(f, "cc other_prop 0x1").unwrap();
        writeln!(f, "cc my_prop 0xcd").unwrap();
        drop(f);

        let mut seen = Vec::new();
        let cfg = ProptestConfig::with_cases(0); // persisted replay only
        run_property(&cfg, source.to_str().unwrap(), "my_prop", |rng| {
            // Recover the seed by replaying the first draw deterministically.
            seen.push(rng.clone());
            let _ = rng.next_u64();
            Ok(())
        });
        assert_eq!(seen.len(), 2, "exactly the two my_prop seeds replay");
        let draws: Vec<u64> = seen.iter_mut().map(|r| r.next_u64()).collect();
        let expected: Vec<u64> = [0xab, 0xcd]
            .iter()
            .map(|&s| crate::test_runner::TestRng::from_seed(s).next_u64())
            .collect();
        assert_eq!(draws, expected);
    }

    #[test]
    fn schedule_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0.0f64..1.0, 1..20);
        let a: Vec<Vec<f64>> = (0..10)
            .map(|i| strat.sample(&mut TestRng::from_seed(i)))
            .collect();
        let b: Vec<Vec<f64>> = (0..10)
            .map(|i| strat.sample(&mut TestRng::from_seed(i)))
            .collect();
        assert_eq!(a, b);
    }
}
