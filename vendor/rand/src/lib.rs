//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation instead of the real crate:
//!
//! * [`rngs::StdRng`] — a SplitMix64 generator (NOT the real StdRng's ChaCha;
//!   adequate statistical quality for test workloads, zero dependencies).
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace uses.
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] over the primitive
//!   types that appear in the codebase.
//!
//! Swapping in the real `rand` later only requires replacing the
//! `[workspace.dependencies]` path entry with a registry version; call sites
//! need no changes (seeded streams will differ, so loosen any test that backed
//! a constant out of a specific stream).

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*}
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*}
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A generator seeded from the system clock; prefer seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&x));
            let y = rng.gen_range(3usize..17);
            assert!((3..17).contains(&y));
            let z = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
            let w = rng.gen_range(0.5f64..=1.0);
            assert!((0.5..=1.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_span_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "bucket badly under-filled: {counts:?}");
        }
    }
}
